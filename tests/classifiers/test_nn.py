"""Unit tests for the from-scratch numpy MLP."""

from __future__ import annotations

import numpy as np
import pytest

from repro.classifiers.nn import MLPClassifier
from repro.errors import InvalidParameterError


def make_blobs(rng, n_per_class=200, n_features=8, separation=3.0, n_classes=2):
    centers = rng.normal(0.0, separation, size=(n_classes, n_features))
    X = np.concatenate(
        [rng.normal(center, 1.0, size=(n_per_class, n_features)) for center in centers]
    )
    y = np.repeat(np.arange(n_classes), n_per_class)
    order = rng.permutation(len(X))
    return X[order], y[order]


class TestTraining:
    def test_learns_separable_blobs(self, rng):
        X, y = make_blobs(rng)
        model = MLPClassifier(8, 2, n_epochs=20, rng=rng)
        model.fit(X, y)
        assert model.accuracy(X, y) > 0.95

    def test_multiclass(self, rng):
        X, y = make_blobs(rng, n_classes=4)
        model = MLPClassifier(8, 4, n_epochs=30, rng=rng)
        model.fit(X, y)
        assert model.accuracy(X, y) > 0.9

    def test_loss_decreases(self, rng):
        X, y = make_blobs(rng)
        model = MLPClassifier(8, 2, n_epochs=10, rng=rng)
        model.fit(X, y)
        assert model.training_losses_[-1] < model.training_losses_[0]

    def test_deterministic_under_seed(self):
        X, y = make_blobs(np.random.default_rng(0))
        first = MLPClassifier(8, 2, n_epochs=3, rng=np.random.default_rng(42)).fit(X, y)
        second = MLPClassifier(8, 2, n_epochs=3, rng=np.random.default_rng(42)).fit(X, y)
        np.testing.assert_allclose(first.w1, second.w1)
        np.testing.assert_allclose(first.w2, second.w2)


class TestPrediction:
    def test_probabilities_sum_to_one(self, rng):
        X, y = make_blobs(rng)
        model = MLPClassifier(8, 2, n_epochs=2, rng=rng).fit(X, y)
        probabilities = model.predict_proba(X[:10])
        np.testing.assert_allclose(probabilities.sum(axis=1), 1.0, rtol=1e-9)
        assert (probabilities >= 0).all()

    def test_log_loss_positive_and_finite(self, rng):
        X, y = make_blobs(rng)
        model = MLPClassifier(8, 2, n_epochs=2, rng=rng).fit(X, y)
        loss = model.log_loss(X, y)
        assert 0.0 <= loss < 10.0


class TestValidation:
    def test_bad_dimensions(self, rng):
        with pytest.raises(InvalidParameterError):
            MLPClassifier(0, 2, rng=rng)
        with pytest.raises(InvalidParameterError):
            MLPClassifier(4, 1, rng=rng)
        with pytest.raises(InvalidParameterError):
            MLPClassifier(4, 2, n_epochs=0, rng=rng)

    def test_fit_validates_shapes(self, rng):
        model = MLPClassifier(4, 2, rng=rng)
        with pytest.raises(InvalidParameterError):
            model.fit(np.zeros((5, 3)), np.zeros(5, dtype=int))
        with pytest.raises(InvalidParameterError):
            model.fit(np.zeros((5, 4)), np.zeros(4, dtype=int))
        with pytest.raises(InvalidParameterError):
            model.fit(np.zeros((0, 4)), np.zeros(0, dtype=int))
        with pytest.raises(InvalidParameterError):
            model.fit(np.zeros((5, 4)), np.full(5, 7))
