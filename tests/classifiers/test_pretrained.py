"""Unit tests for the Table 2 classifier-profile registry."""

from __future__ import annotations

import numpy as np

from repro.classifiers.metrics import binary_confusion
from repro.classifiers.pretrained import FEMALE, PAPER_PROFILES, table2_rows


def test_registry_has_nine_rows():
    assert len(PAPER_PROFILES) == 9
    assert {p.dataset_key for p in PAPER_PROFILES} == {
        "feret_403_591", "utkface_200_2800", "utkface_20_2980",
    }
    assert {p.classifier_name for p in PAPER_PROFILES} == {
        "DeepFace (opencv)", "DeepFace (retinaface)", "BaseCNN",
    }


def test_every_profile_is_realizable_on_its_slice():
    for profile, builder in table2_rows():
        rng = np.random.default_rng(3)
        dataset = builder(rng)
        classifier = profile.classifier()
        predicted = classifier.predict(dataset, rng)
        confusion = binary_confusion(dataset.mask(FEMALE), predicted)
        assert abs(confusion.accuracy - profile.accuracy) <= 0.005, profile
        assert abs(confusion.precision - profile.precision_on_female) <= 0.005, profile


def test_paper_strategy_consistent_with_precision():
    """The paper's reported strategy must agree with the 25% FP rule the
    prose states (our DESIGN.md deviation 3 analysis)."""
    for profile in PAPER_PROFILES:
        expected = "partition" if profile.precision_on_female >= 0.75 else "label"
        assert profile.paper_strategy == expected, profile
