"""Unit tests for classification metrics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.classifiers.metrics import (
    BinaryConfusion,
    binary_confusion,
    multiclass_accuracy,
)
from repro.errors import InvalidParameterError


class TestBinaryConfusion:
    def test_derived_metrics(self):
        confusion = BinaryConfusion(tp=40, fp=10, fn=20, tn=130)
        assert confusion.total == 200
        assert confusion.n_positive == 60
        assert confusion.n_predicted_positive == 50
        assert confusion.accuracy == pytest.approx(0.85)
        assert confusion.precision == pytest.approx(0.8)
        assert confusion.recall == pytest.approx(40 / 60)
        assert confusion.false_positive_rate_in_predicted == pytest.approx(0.2)

    def test_degenerate_cases(self):
        empty_prediction = BinaryConfusion(tp=0, fp=0, fn=10, tn=90)
        assert empty_prediction.precision == 0.0
        assert empty_prediction.false_positive_rate_in_predicted == 0.0
        no_positives = BinaryConfusion(tp=0, fp=5, fn=0, tn=95)
        assert no_positives.recall == 0.0

    def test_negative_counts_rejected(self):
        with pytest.raises(InvalidParameterError):
            BinaryConfusion(tp=-1, fp=0, fn=0, tn=0)

    def test_describe(self):
        text = BinaryConfusion(tp=1, fp=2, fn=3, tn=4).describe()
        assert "TP=1" in text and "precision" in text


class TestBinaryConfusionFromMasks:
    def test_counts(self):
        true = np.array([1, 1, 1, 0, 0, 0], dtype=bool)
        pred = np.array([1, 0, 1, 1, 0, 0], dtype=bool)
        confusion = binary_confusion(true, pred)
        assert (confusion.tp, confusion.fp, confusion.fn, confusion.tn) == (2, 1, 1, 2)

    def test_shape_mismatch(self):
        with pytest.raises(InvalidParameterError):
            binary_confusion(np.zeros(3, bool), np.zeros(4, bool))


class TestMulticlassAccuracy:
    def test_basic(self):
        assert multiclass_accuracy(np.array([0, 1, 2]), np.array([0, 1, 1])) == pytest.approx(2 / 3)

    def test_empty(self):
        assert multiclass_accuracy(np.array([]), np.array([])) == 0.0

    def test_shape_mismatch(self):
        with pytest.raises(InvalidParameterError):
            multiclass_accuracy(np.array([0]), np.array([0, 1]))
