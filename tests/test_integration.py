"""End-to-end integration tests: full audits through the noisy platform.

These exercise the complete stack — corpus builder -> worker pool ->
quality control -> platform -> oracle -> algorithm -> report — the way a
downstream user would run it.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.classifiers import ProfileClassifier
from repro.core import (
    base_coverage,
    classifier_coverage,
    group_coverage,
    intersectional_coverage,
    multiple_coverage,
    upper_bound_tasks,
)
from repro.crowd import (
    CrowdOracle,
    CrowdPlatform,
    FlakyOracle,
    GroundTruthOracle,
    make_worker_pool,
    qc_with_rating,
)
from repro.data import (
    Schema,
    binary_dataset,
    feret_mturk_slice,
    group,
    intersectional_dataset,
    single_attribute_dataset,
)
from repro.errors import BudgetExceededError
from repro.patterns import assess_tabular_coverage

FEMALE = group(gender="female")


class TestMTurkStyleAudit:
    """The Table 1 pipeline end to end, with a noisy screened crowd."""

    def test_full_feret_audit(self):
        rng = np.random.default_rng(0)
        dataset = feret_mturk_slice(rng)
        workers = make_worker_pool(40, rng, error_rate=0.0136, spammer_fraction=0.2)
        platform = CrowdPlatform(dataset, workers, rng, screening=qc_with_rating())
        oracle = CrowdOracle(platform)

        result = group_coverage(oracle, FEMALE, 50, n=50, dataset_size=len(dataset))
        assert result.covered  # 215 females >= 50
        assert result.tasks.total < upper_bound_tasks(len(dataset), 50, 50)
        # The ledger, the platform, and the result agree.
        assert oracle.ledger.total == platform.ledger.n_hits == result.tasks.total
        assert platform.ledger.total_cost > 0

    def test_noisy_crowd_still_beats_baseline(self):
        rng = np.random.default_rng(1)
        dataset = feret_mturk_slice(rng)
        workers = make_worker_pool(30, rng, error_rate=0.0136)

        group_platform = CrowdPlatform(dataset, workers, rng)
        group_result = group_coverage(
            CrowdOracle(group_platform), FEMALE, 50, n=50, dataset_size=len(dataset)
        )
        base_platform = CrowdPlatform(dataset, workers, rng)
        base_result = base_coverage(
            CrowdOracle(base_platform), FEMALE, 50, dataset_size=len(dataset)
        )
        assert group_result.covered and base_result.covered
        assert group_result.tasks.total < base_result.tasks.total / 3


class TestBaselinePipeline:
    """The paper's strawman: label everything, then run tabular coverage."""

    def test_label_all_then_tabular(self, rng):
        schema = Schema.from_dict(
            {"gender": ["male", "female"], "race": ["white", "black"]}
        )
        dataset = intersectional_dataset(
            schema,
            {
                ("male", "white"): 300,
                ("female", "white"): 80,
                ("male", "black"): 60,
                ("female", "black"): 4,
            },
            rng=rng,
        )
        oracle = GroundTruthOracle(dataset)
        labeled_rows = [oracle.ask_point(i) for i in range(len(dataset))]
        relabeled = type(dataset).from_value_rows(schema, labeled_rows)
        report = assess_tabular_coverage(relabeled, tau=50)
        assert [m.describe() for m in report.mups] == ["female-black"]
        # Cost of the strawman: one task per object.
        assert oracle.ledger.total == len(dataset)

    def test_crowdsourced_route_is_cheaper_and_agrees(self, rng):
        schema = Schema.from_dict(
            {"gender": ["male", "female"], "race": ["white", "black"]}
        )
        dataset = intersectional_dataset(
            schema,
            {
                ("male", "white"): 3000,
                ("female", "white"): 800,
                ("male", "black"): 600,
                ("female", "black"): 4,
            },
            rng=rng,
        )
        report = intersectional_coverage(
            GroundTruthOracle(dataset), schema, 50, n=50, rng=rng,
            dataset_size=len(dataset),
        )
        reference = assess_tabular_coverage(dataset, tau=50)
        assert set(report.mups) == set(reference.mups)
        assert report.tasks.total < len(dataset)


class TestClassifierAssistedAudit:
    def test_profile_classifier_to_coverage(self, rng):
        dataset = binary_dataset(994, 403, rng=rng)
        classifier = ProfileClassifier(
            name="DeepFace-like", target_group=FEMALE, accuracy=0.8, precision=0.99
        )
        predicted = classifier.predicted_positive_indices(dataset, rng)
        result = classifier_coverage(
            GroundTruthOracle(dataset), FEMALE, 50, predicted, n=50, rng=rng,
            dataset_size=len(dataset),
        )
        baseline = group_coverage(
            GroundTruthOracle(dataset), FEMALE, 50, n=50, dataset_size=len(dataset)
        )
        assert result.covered and baseline.covered
        assert result.strategy == "partition"
        assert result.tasks.total < baseline.tasks.total


class TestRobustness:
    def test_budget_aborts_expensive_audit(self, rng):
        dataset = binary_dataset(10_000, 10, rng=rng)
        oracle = GroundTruthOracle(dataset, budget=50)
        with pytest.raises(BudgetExceededError):
            group_coverage(oracle, FEMALE, 50, n=50, dataset_size=len(dataset))
        assert oracle.ledger.total == 50

    def test_flaky_oracle_at_low_error_usually_agrees(self):
        """Without redundancy, small answer noise rarely flips the verdict
        on a clearly covered group (sanity of the noise model, not a
        guarantee)."""
        agreements = 0
        for seed in range(10):
            rng = np.random.default_rng(seed)
            dataset = binary_dataset(2000, 600, rng=rng)
            oracle = FlakyOracle(dataset, rng, set_error_rate=0.01)
            result = group_coverage(oracle, FEMALE, 50, n=50, dataset_size=2000)
            agreements += int(result.covered)
        assert agreements >= 8

    def test_multiple_coverage_with_noisy_crowd(self):
        rng = np.random.default_rng(4)
        dataset = single_attribute_dataset(
            {"white": 4000, "black": 700, "asian": 25}, rng=rng
        )
        workers = make_worker_pool(30, rng, error_rate=0.01)
        platform = CrowdPlatform(dataset, workers, rng)
        report = multiple_coverage(
            CrowdOracle(platform),
            [group(race=v) for v in ("white", "black", "asian")],
            50,
            n=50,
            rng=rng,
            dataset_size=len(dataset),
        )
        assert report.entry_for(group(race="white")).covered
        assert report.entry_for(group(race="black")).covered
        assert not report.entry_for(group(race="asian")).covered
