"""Chaos conformance: SIGKILL a worker mid-audit, prove nothing is lost.

The acceptance property this file pins (ISSUE 6): a worker killed with
SIGKILL mid-job is re-leased and resumed by another worker, and the
finished job's verdicts, task counts, and rng-derived outputs are
bit-identical to an uninterrupted run — with **zero re-asked paid
queries**: no query durable in the checkpoint at the moment of the kill
is ever sent to the (paid) oracle again.

Two layers:

* a real-OS-process test using :class:`~repro.serving.WorkerPool` and
  ``SIGKILL`` — the worker dies between two arbitrary instructions;
* an in-process variant using a cooperative stop, where the replay
  ledger can be audited exactly (faster, runs everywhere, catches the
  same protocol regressions deterministically).
"""

from __future__ import annotations

import io
import json
import threading
import time

import pytest

from repro.audit import GroupAuditSpec
from repro.audit.serialization import (
    point_answers_from_list,
    set_answers_from_list,
)
from repro.data.groups import group
from repro.serving import JobBoard, Submission, WorkerPool, run_worker

from .conftest import background_worker, make_root, wait_until

#: Heavy enough that a worker spends seconds on it (batch_size 4 +
#: 10 ms/step), so the SIGKILL always lands mid-audit.
CHAOS_RECIPE = {
    "kind": "synthetic-binary",
    "n": 3000,
    "n_minority": 300,
    "dataset_seed": 3,
}
CHAOS_CONFIG = dict(
    recipe=CHAOS_RECIPE,
    batch_size=4,
    checkpoint_every=1,
    lease_ttl_seconds=1.0,
    step_delay_seconds=0.01,
)
CHAOS_SPEC = GroupAuditSpec(predicate=group(gender="female"), tau=250)
CHAOS_SEED = 77


def chaos_submission() -> Submission:
    return Submission.from_spec(CHAOS_SPEC, tenant="chaos", seed=CHAOS_SEED)


def durable_answers(board: JobBoard, job_id: str):
    """The checkpointed (paid-and-durable) answer keys of a job."""
    path = board.job_dir(job_id) / "store" / "answers.json"
    if not path.exists():
        return set(), set()
    payload = json.loads(path.read_text())
    set_keys = set(set_answers_from_list(payload.get("set_answers") or []))
    point_keys = set(
        point_answers_from_list(payload.get("point_answers") or [])
    )
    return set_keys, point_keys


def asked_queries(log_text: str):
    """Decode a worker ``--query-log`` into (set key set, point set)."""
    set_asked, point_asked = set(), set()
    for line in log_text.splitlines():
        if not line.strip():
            continue
        entry = json.loads(line)
        if entry["kind"] == "point":
            point_asked.add(int(entry["index"]))
        else:
            record = dict(entry)
            record["answer"] = True  # codec needs the field; key ignores it
            set_asked.add(next(iter(set_answers_from_list([record]))))
    return set_asked, point_asked


def scrubbed_report(state: dict) -> list[dict]:
    """Report entries with per-run accounting removed: what must be
    bit-identical across interrupted and uninterrupted runs."""
    entries = []
    for entry in state["result"]["entries"]:
        result = dict(entry["result"])
        result.pop("tasks", None)
        result.pop("engine_stats", None)
        entries.append({"spec": entry["spec"], "result": result})
    return entries


def reference_state(tmp_path) -> dict:
    """One uninterrupted run of the chaos job on its own root."""
    root = make_root(tmp_path, name="reference", **CHAOS_CONFIG)
    board = JobBoard(root)
    job_id, _ = board.submit(chaos_submission())
    with background_worker(root, "uninterrupted"):
        wait_until(
            lambda: board.read_state(job_id)["status"] == "succeeded",
            timeout=120,
            message="reference run to finish",
        )
    return board.read_state(job_id)


class TestKillResume:
    @pytest.mark.slow
    def test_sigkill_mid_audit_resumes_bit_identical(self, tmp_path):
        reference = reference_state(tmp_path)
        assert reference["tasks_paid"] > 60, "chaos job too small to test"

        root = make_root(tmp_path, name="chaos", **CHAOS_CONFIG)
        board = JobBoard(root)
        job_id, _ = board.submit(chaos_submission())
        query_log = tmp_path / "phase2-queries.ndjson"

        with WorkerPool(root, n_workers=1) as pool:
            # Let the doomed worker make real, durable progress.
            wait_until(
                lambda: len(durable_answers(board, job_id)[0]) >= 30,
                timeout=60,
                message="victim worker to checkpoint progress",
            )
            assert board.read_state(job_id)["status"] == "running"
            killed = pool.kill_one()
            assert killed is not None and killed.returncode == -9

            durable_sets, durable_points = durable_answers(board, job_id)
            assert len(durable_sets) < reference["tasks_paid"], (
                "job finished before the kill — not a mid-audit test"
            )

            recovery_started = time.monotonic()
            pool.spawn("--query-log", str(query_log))
            wait_until(
                lambda: board.read_state(job_id)["status"] == "succeeded",
                timeout=120,
                message="job to be re-leased and finished",
            )
            recovery_seconds = time.monotonic() - recovery_started

        state = board.read_state(job_id)
        # 1. Verdicts (and rng-derived outputs) bit-identical.
        assert scrubbed_report(state) == scrubbed_report(reference)
        # 2. Task counts bit-identical: durable spend at the kill plus
        #    the resumed worker's fresh spend equals the uninterrupted
        #    bill — nothing double-charged, nothing dropped.
        assert state["tasks_paid"] == reference["tasks_paid"]
        # 3. Zero re-asked paid queries: nothing durable at the kill was
        #    ever asked again by the resumed worker.
        asked_sets, asked_points = asked_queries(query_log.read_text())
        assert not (durable_sets & asked_sets)
        assert not (durable_points & asked_points)
        assert len(durable_sets) + len(asked_sets) >= reference["tasks_paid"]
        # 4. The takeover is visible in the audit trail and prompt.
        stages = [event["stage"] for event in state["events"]]
        assert "resumed" in stages
        assert state["worker"] == "pool-w1"
        assert recovery_seconds < 60

    def test_cooperative_handoff_reasks_nothing(self, tmp_path):
        """In-process twin: worker A stops gracefully mid-job, worker B
        finishes it. Exact zero-re-ask accounting via the query log."""
        reference = reference_state(tmp_path)

        root = make_root(tmp_path, name="handoff", **CHAOS_CONFIG)
        board = JobBoard(root)
        job_id, _ = board.submit(chaos_submission())

        stop = threading.Event()
        first = threading.Thread(
            target=run_worker,
            args=(root, "walk-away"),
            kwargs={"stop_event": stop, "poll_interval": 0.01},
            daemon=True,
        )
        first.start()
        wait_until(
            lambda: len(durable_answers(board, job_id)[0]) >= 30,
            timeout=60,
            message="first worker to checkpoint progress",
        )
        stop.set()
        first.join(timeout=30)
        assert not first.is_alive()

        durable_sets, durable_points = durable_answers(board, job_id)
        log = io.StringIO()
        with background_worker(root, "finisher", query_log=log):
            wait_until(
                lambda: board.read_state(job_id)["status"] == "succeeded",
                timeout=120,
                message="second worker to finish the job",
            )

        state = board.read_state(job_id)
        assert scrubbed_report(state) == scrubbed_report(reference)
        assert state["tasks_paid"] == reference["tasks_paid"]
        asked_sets, asked_points = asked_queries(log.getvalue())
        assert not (durable_sets & asked_sets)
        assert not (durable_points & asked_points)

    def test_seedless_submission_is_reproducible_across_workers(
        self, tmp_path
    ):
        """A submission without a seed derives one from its idempotency
        digest, so *any* worker (first claim or post-crash re-claim)
        runs the same rng stream: two independent deployments must
        produce byte-identical results."""
        states = []
        for name in ("alpha", "beta"):
            root = make_root(tmp_path, name=name, **CHAOS_CONFIG)
            board = JobBoard(root)
            submission = Submission.from_spec(CHAOS_SPEC, tenant="chaos")
            assert submission.seed is None
            job_id, _ = board.submit(submission)
            with background_worker(root, f"worker-{name}"):
                wait_until(
                    lambda: board.read_state(job_id)["status"] == "succeeded",
                    timeout=120,
                    message=f"{name} run to finish",
                )
            states.append(board.read_state(job_id))
        assert scrubbed_report(states[0]) == scrubbed_report(states[1])
        assert states[0]["tasks_paid"] == states[1]["tasks_paid"]
