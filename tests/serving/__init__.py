"""Serving conformance/chaos suite (package so tests share conftest helpers)."""
