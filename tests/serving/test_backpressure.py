"""Admission control: per-tenant queue ceilings → 429 + Retry-After.

Backpressure is per tenant: one tenant saturating its queue must not
affect another tenant's ability to submit, and draining the queue must
re-open admission.
"""

from __future__ import annotations

import pytest

from repro.audit import GroupAuditSpec
from repro.data.groups import group
from repro.serving import ServerBusyError, ServingClient, ServingGateway

from .conftest import background_worker, make_root


def spec_for(tau):
    return GroupAuditSpec(predicate=group(gender="female"), tau=tau)


@pytest.fixture
def small_root(tmp_path):
    """A root whose tenants may hold at most two unfinished jobs."""
    return make_root(
        tmp_path,
        name="small",
        max_queued_per_tenant=2,
        retry_after_seconds=0.25,
    )


@pytest.fixture
def small_gateway(small_root):
    with ServingGateway(small_root) as server:
        yield server


@pytest.fixture
def small_client(small_gateway):
    return ServingClient("127.0.0.1", small_gateway.port)


class TestBackpressure:
    def test_429_past_the_tenant_ceiling(self, small_client):
        small_client.submit(spec_for(10), tenant="greedy")
        small_client.submit(spec_for(11), tenant="greedy")
        with pytest.raises(ServerBusyError) as excinfo:
            small_client.submit(spec_for(12), tenant="greedy")
        assert excinfo.value.retry_after == 0.25

    def test_retry_after_header_travels(self, small_gateway, small_client):
        import http.client
        import json

        small_client.submit(spec_for(10), tenant="header")
        small_client.submit(spec_for(11), tenant="header")
        connection = http.client.HTTPConnection(
            "127.0.0.1", small_gateway.port
        )
        try:
            connection.request(
                "POST",
                "/v1/jobs",
                body=json.dumps(
                    {"spec": spec_for(12).to_dict(), "tenant": "header"}
                ),
                headers={"Content-Type": "application/json"},
            )
            response = connection.getresponse()
            assert response.status == 429
            assert float(response.headers["Retry-After"]) == 0.25
            response.read()
        finally:
            connection.close()

    def test_other_tenants_are_unaffected(self, small_client):
        small_client.submit(spec_for(10), tenant="greedy")
        small_client.submit(spec_for(11), tenant="greedy")
        with pytest.raises(ServerBusyError):
            small_client.submit(spec_for(12), tenant="greedy")
        # A different tenant sails through.
        record = small_client.submit(spec_for(12), tenant="patient")
        assert record["created"] is True

    def test_duplicate_submit_never_counts_against_the_ceiling(
        self, small_client
    ):
        first = small_client.submit(spec_for(10), tenant="dup")
        small_client.submit(spec_for(11), tenant="dup")
        # Resubmitting an already-held job is idempotent, not a third job.
        again = small_client.submit(spec_for(10), tenant="dup")
        assert again["job_id"] == first["job_id"]
        assert again["created"] is False

    def test_draining_reopens_admission(self, small_root, small_client):
        small_client.submit(spec_for(10), tenant="greedy")
        small_client.submit(spec_for(11), tenant="greedy")
        with pytest.raises(ServerBusyError):
            small_client.submit(spec_for(12), tenant="greedy")
        with background_worker(small_root):
            for tau in (10, 11):
                job_id = "unused"
                record = small_client.submit(spec_for(tau), tenant="greedy")
                job_id = record["job_id"]
                small_client.result(job_id, timeout=60)
        # Both jobs terminal → the reconciliation pass re-admits.
        record = small_client.submit(spec_for(12), tenant="greedy")
        assert record["created"] is True
