"""Protocol conformance over a live loopback server.

Every route round-trips through real HTTP (stdlib client against the
threaded stdlib server): submits, state reads, long-polled and streamed
events with cursor resume, result retrieval, cancellation, and the
error mapping (400/404/409/429) clients program against.
"""

from __future__ import annotations

import json
import threading

import pytest

from repro.audit import GroupAuditSpec
from repro.data.groups import group
from repro.errors import InvalidParameterError, JobFailedError
from repro.serving import Submission, spec_hash

from .conftest import background_worker, wait_until


def spec_for(tau=40, value="female"):
    return GroupAuditSpec(predicate=group(gender=value), tau=tau)


class TestSubmitAndStatus:
    def test_submit_returns_the_hash_derived_job_id(self, client):
        spec = spec_for()
        record = client.submit(spec, tenant="team-a", seed=3)
        expected = "j" + spec_hash(spec, tenant="team-a", seed=3)[:16]
        assert record["job_id"] == expected
        assert record["created"] is True
        assert record["http_status"] == 201
        assert client.status(record["job_id"])["status"] == "queued"

    def test_duplicate_submit_is_200_not_created(self, client):
        spec = spec_for()
        first = client.submit(spec, tenant="team-a")
        second = client.submit(spec, tenant="team-a")
        assert first["created"] and not second["created"]
        assert first["job_id"] == second["job_id"]
        assert second["http_status"] == 200

    def test_tenant_and_seed_are_identity(self, client):
        spec = spec_for()
        ids = {
            client.submit(spec, tenant="a")["job_id"],
            client.submit(spec, tenant="b")["job_id"],
            client.submit(spec, tenant="a", seed=1)["job_id"],
        }
        assert len(ids) == 3

    def test_state_record_shape(self, client):
        job_id = client.submit(spec_for(), tenant="shape")["job_id"]
        state = client.status(job_id)
        assert state["job_id"] == job_id
        assert state["tenant"] == "shape"
        assert state["status"] == "queued"
        assert state["result"] is None
        assert [e["stage"] for e in state["events"]] == ["submitted"]
        assert state["tasks_paid"] == 0


class TestResultAndEvents:
    def test_submit_to_result_round_trip(self, serving_root, client):
        with background_worker(serving_root):
            record = client.submit(spec_for(), tenant="rt", seed=11)
            result = client.result(record["job_id"], timeout=60)
        assert result["status"] == "succeeded"
        entry = result["report"]["entries"][0]["result"]
        assert entry["covered"] is True and entry["count"] == 40
        assert result["tasks_paid"] > 0

    def test_result_while_queued_is_202_with_retry_after(self, client):
        job_id = client.submit(spec_for(), tenant="pending")["job_id"]
        record = client._request("GET", f"/v1/jobs/{job_id}/result")
        assert record["http_status"] == 202
        assert record["retry_after"] > 0

    def test_result_of_cancelled_job_raises_job_failed(self, client):
        job_id = client.submit(spec_for(), tenant="gone")["job_id"]
        assert client.cancel(job_id)["status"] == "cancelled"
        with pytest.raises(JobFailedError):
            client.result(job_id, timeout=1)

    def test_events_long_poll_sees_progress(self, serving_root, client):
        job_id = client.submit(spec_for(), tenant="events")["job_id"]
        snapshot = client.events(job_id)
        assert [e["stage"] for e in snapshot["events"]] == ["submitted"]
        with background_worker(serving_root):
            # Long-poll from the cursor: returns as soon as news lands.
            record = client.events(job_id, cursor=snapshot["cursor"], wait=30)
            assert record["events"], "long-poll returned without news"
            assert record["cursor"] > snapshot["cursor"]
            client.result(job_id, timeout=60)
        stages = [e["stage"] for e in client.events(job_id)["events"]]
        assert stages[0] == "submitted"
        assert "claimed" in stages and stages[-1] == "succeeded"

    def test_event_stream_ends_at_terminal_and_resumes_by_cursor(
        self, serving_root, client
    ):
        job_id = client.submit(spec_for(), tenant="stream")["job_id"]
        with background_worker(serving_root):
            streamed = list(client.stream_events(job_id))
        assert streamed[-1]["status"] == "succeeded"
        cursors = [event["cursor"] for event in streamed]
        assert cursors == sorted(cursors)
        # Cursor resume: replaying from a mid-stream cursor yields
        # exactly the tail, byte-identical modulo the live status field.
        tail = list(client.stream_events(job_id, cursor=cursors[0]))
        assert [e["stage"] for e in tail] == [
            e["stage"] for e in streamed[1:]
        ]


class TestCancellation:
    def test_cancel_queued_job_is_immediate(self, client):
        job_id = client.submit(spec_for(), tenant="c1")["job_id"]
        assert client.cancel(job_id)["status"] == "cancelled"
        assert client.status(job_id)["status"] == "cancelled"

    def test_cancel_is_idempotent_over_http(self, client):
        job_id = client.submit(spec_for(), tenant="c2")["job_id"]
        assert client.cancel(job_id)["status"] == "cancelled"
        assert client.cancel(job_id)["status"] == "cancelled"

    def test_cancel_running_job_converges(self, serving_root, board, client):
        # Slow the worker down so the cancel lands mid-run.
        job_id = client.submit(spec_for(tau=55), tenant="c3")["job_id"]
        with background_worker(serving_root):
            wait_until(
                lambda: client.status(job_id)["status"] != "queued",
                message="job to be claimed",
            )
            client.cancel(job_id)
            wait_until(
                lambda: client.status(job_id)["status"]
                in ("cancelled", "succeeded"),
                message="cancel to converge",
            )
        # Either the marker won mid-run or the job finished first —
        # both are valid outcomes of the race; never an error state.
        assert client.status(job_id)["status"] in ("cancelled", "succeeded")


class TestErrorMapping:
    def test_unknown_job_id_is_404(self, client):
        with pytest.raises(InvalidParameterError, match="unknown job id"):
            client.status("j" + "f" * 16)

    def test_malformed_job_id_is_400(self, client):
        with pytest.raises(InvalidParameterError, match="malformed"):
            client.status("..%2fescape")

    def test_unknown_spec_kind_is_400(self, client):
        with pytest.raises(InvalidParameterError, match="kind"):
            client.submit({"kind": "no-such-audit", "tau": 5})

    def test_missing_spec_is_400(self, client):
        with pytest.raises(InvalidParameterError, match="spec"):
            client._request("POST", "/v1/jobs", {"tenant": "x"})

    def test_hand_written_spec_missing_fields_is_400(self, client):
        """A curl-style spec lacking optional-looking codec fields
        (``n``, ``view``) must map to a clean 400, not a 500 — and the
        error names the first missing field."""
        partial = {
            "kind": "group",
            "tau": 50,
            "predicate": {"type": "group", "conditions": {"gender": "female"}},
        }
        with pytest.raises(InvalidParameterError, match="missing field"):
            client.submit(partial)

    def test_bad_tenant_is_400(self, client):
        with pytest.raises(InvalidParameterError, match="tenant"):
            client.submit(spec_for(), tenant="")

    def test_unknown_route_is_400(self, client):
        with pytest.raises(InvalidParameterError, match="no such route"):
            client._request("GET", "/v2/nope")

    def test_non_json_body_is_400(self, gateway):
        import http.client

        connection = http.client.HTTPConnection("127.0.0.1", gateway.port)
        try:
            connection.request(
                "POST",
                "/v1/jobs",
                body=b"not json",
                headers={"Content-Type": "application/json"},
            )
            response = connection.getresponse()
            assert response.status == 400
            assert "JSON" in json.loads(response.read())["error"]
        finally:
            connection.close()

    def test_healthz_counts_jobs(self, client):
        client.submit(spec_for(), tenant="hz")
        health = client.health()
        assert health["ok"] is True
        assert health["counts"].get("queued", 0) >= 1


class TestConcurrentClients:
    def test_parallel_reads_during_writes(self, serving_root, client):
        """Many threads hammering reads while a worker writes states —
        nobody ever sees a torn or invalid record."""
        job_id = client.submit(
            Submission.from_spec(spec_for(tau=55), tenant="hammer").spec(),
            tenant="hammer",
        )["job_id"]
        errors: list[Exception] = []

        def reader():
            try:
                for _ in range(40):
                    state = client.status(job_id)
                    assert state["job_id"] == job_id
                    json.dumps(state)  # always valid JSON end to end
            except Exception as error:  # pragma: no cover - failure path
                errors.append(error)

        with background_worker(serving_root):
            threads = [threading.Thread(target=reader) for _ in range(8)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=60)
            client.result(job_id, timeout=60)
        assert not errors
