"""Duplicate-submit idempotency: same spec hash → one job, one bill.

The acceptance property: two (or many) concurrent submits of the same
spec hash from the same tenant return the same job id and charge the
task budget once.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor

from repro.audit import AuditSession, GroupAuditSpec
from repro.data.groups import group
from repro.serving import JobBoard, Submission
from repro.serving.config import build_oracle

from .conftest import DEFAULT_RECIPE, background_worker, wait_until


def spec_for(tau=40):
    return GroupAuditSpec(predicate=group(gender="female"), tau=tau)


def reference_spend(spec, batch_size=32) -> int:
    """Task spend of one uninterrupted in-process run of ``spec``."""
    oracle = build_oracle(DEFAULT_RECIPE)
    with AuditSession(
        oracle, engine=True, batch_size=batch_size
    ) as session:
        report = session.run(spec)
    return report.tasks.total


class TestConcurrentSubmits:
    def test_many_concurrent_submits_one_job_one_bill(
        self, serving_root, board, client
    ):
        spec = spec_for()
        barrier = threading.Barrier(8)

        def submit():
            barrier.wait()
            return client.submit(spec, tenant="team-a", seed=5)

        with ThreadPoolExecutor(max_workers=8) as pool:
            records = list(pool.map(lambda _: submit(), range(8)))

        ids = {record["job_id"] for record in records}
        assert len(ids) == 1, "concurrent duplicates diverged"
        assert sum(record["created"] for record in records) == 1
        # Exactly one job directory exists on the board.
        assert board.job_ids() == [ids.pop()]

    def test_duplicate_submits_charge_the_budget_once(
        self, serving_root, board, client
    ):
        spec = spec_for()
        job_id = None
        with background_worker(serving_root):
            # Keep re-submitting while the job runs: late duplicates of
            # a running (then finished) job must not restart or re-bill.
            for _ in range(5):
                record = client.submit(spec, tenant="team-a", seed=5)
                job_id = record["job_id"]
            result = client.result(job_id, timeout=60)
            for _ in range(3):
                assert (
                    client.submit(spec, tenant="team-a", seed=5)["created"]
                    is False
                )
        assert result["tasks_paid"] == reference_spend(spec)
        # The state record on disk agrees with what the client saw.
        assert board.read_state(job_id)["tasks_paid"] == result["tasks_paid"]

    def test_submits_racing_the_worker_claim(self, serving_root, client):
        """Duplicates that land while a worker is already running the
        job join it rather than forking it."""
        spec = spec_for(tau=55)
        first = client.submit(spec, tenant="race", seed=9)
        with background_worker(serving_root):
            wait_until(
                lambda: client.status(first["job_id"])["status"] != "queued",
                message="job to start",
            )
            duplicate = client.submit(spec, tenant="race", seed=9)
            assert duplicate["job_id"] == first["job_id"]
            assert duplicate["created"] is False
            assert duplicate["status"] in ("running", "succeeded")
            client.result(first["job_id"], timeout=60)


class TestBoardLevelIdempotency:
    def test_board_submit_race_without_http(self, serving_root):
        """The exclusive-link creation holds under direct board racing
        from many threads (no gateway serialization in front)."""
        boards = [JobBoard(serving_root) for _ in range(6)]
        submission = Submission.from_spec(spec_for(), tenant="raw")
        barrier = threading.Barrier(6)
        outcomes = []

        def submit(board):
            barrier.wait()
            outcomes.append(board.submit(submission))

        threads = [
            threading.Thread(target=submit, args=(board,)) for board in boards
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
        assert len(outcomes) == 6
        assert len({job_id for job_id, _ in outcomes}) == 1
        assert sum(created for _, created in outcomes) == 1
        # The surviving submission record is complete and readable.
        board = boards[0]
        recovered = board.read_submission(submission.job_id)
        assert recovered == submission

    def test_worker_double_scan_runs_the_job_once(self, serving_root, board):
        """Two workers scanning the same board: the job runs exactly
        once (one claim wins; the loser moves on)."""
        submission = Submission.from_spec(spec_for(), tenant="двое")
        board.submit(submission)
        with background_worker(serving_root, "w-a"), background_worker(
            serving_root, "w-b"
        ):
            state = wait_until(
                lambda: (
                    board.read_state(submission.job_id)
                    if board.read_state(submission.job_id)["status"]
                    == "succeeded"
                    else None
                ),
                message="job to finish",
            )
        assert state["tasks_paid"] == reference_spend(spec_for())
        claim_events = [
            event
            for event in state["events"]
            if event["stage"] in ("claimed", "resumed")
        ]
        assert len(claim_events) == 1, "job was claimed more than once"
