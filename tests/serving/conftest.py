"""Shared fixtures for the serving conformance/chaos suite."""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager

import pytest

from repro.serving import (
    JobBoard,
    ServingClient,
    ServingConfig,
    ServingGateway,
    init_serving_root,
    run_worker,
)

#: Small enough for sub-second audits, big enough to need many rounds.
DEFAULT_RECIPE = {
    "kind": "synthetic-binary",
    "n": 500,
    "n_minority": 60,
    "dataset_seed": 7,
}


def make_root(tmp_path, name="root", **overrides):
    """An initialised serving root under the test's tmp dir."""
    overrides.setdefault("recipe", dict(DEFAULT_RECIPE))
    return init_serving_root(tmp_path / name, ServingConfig(**overrides))


@contextmanager
def background_worker(root, worker_id="test-worker", **kwargs):
    """One in-process worker thread serving ``root`` for the block."""
    stop = threading.Event()
    kwargs.setdefault("stop_event", stop)
    kwargs.setdefault("poll_interval", 0.01)
    thread = threading.Thread(
        target=run_worker, args=(root, worker_id), kwargs=kwargs, daemon=True
    )
    thread.start()
    try:
        yield thread
    finally:
        stop.set()
        thread.join(timeout=30)
        assert not thread.is_alive(), "worker thread failed to stop"


def wait_until(predicate, *, timeout=30.0, interval=0.02, message="condition"):
    """Poll ``predicate`` until truthy; returns its value or fails."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        value = predicate()
        if value:
            return value
        time.sleep(interval)
    pytest.fail(f"timed out after {timeout:g}s waiting for {message}")


@pytest.fixture
def serving_root(tmp_path):
    """A default-config serving root."""
    return make_root(tmp_path)


@pytest.fixture
def board(serving_root):
    """A board over the default root."""
    return JobBoard(serving_root)


@pytest.fixture
def gateway(serving_root):
    """A live loopback gateway over the default root."""
    with ServingGateway(serving_root) as server:
        yield server


@pytest.fixture
def client(gateway):
    """A client pointed at the live gateway."""
    return ServingClient("127.0.0.1", gateway.port)
