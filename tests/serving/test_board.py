"""The job board's lease protocol: atomic claims, stale takeover,
heartbeat fencing — the invariants kill/resume recovery rests on."""

from __future__ import annotations

import threading
import time

import pytest

from repro.audit import GroupAuditSpec
from repro.data.groups import group
from repro.errors import InvalidParameterError
from repro.serving import LeaseLostError, Submission


def submitted_job(board, tau=40, tenant="lease"):
    submission = Submission.from_spec(
        GroupAuditSpec(predicate=group(gender="female"), tau=tau),
        tenant=tenant,
    )
    job_id, _ = board.submit(submission)
    return job_id


class TestClaims:
    def test_exactly_one_of_many_racers_claims(self, board):
        job_id = submitted_job(board)
        barrier = threading.Barrier(8)
        wins = []

        def claim(worker):
            barrier.wait()
            lease = board.try_claim(job_id, worker, ttl=30)
            if lease is not None:
                wins.append(lease)

        threads = [
            threading.Thread(target=claim, args=(f"w{i}",)) for i in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
        assert len(wins) == 1
        info = board.lease_info(job_id)
        assert info["worker"] == wins[0].worker

    def test_live_lease_blocks_reclaim(self, board):
        job_id = submitted_job(board)
        assert board.try_claim(job_id, "first", ttl=30) is not None
        assert board.try_claim(job_id, "second", ttl=30) is None
        assert not board.claimable(job_id, ttl=30)

    def test_stale_lease_is_taken_over_by_exactly_one(self, board):
        job_id = submitted_job(board)
        assert board.try_claim(job_id, "doomed", ttl=30) is not None
        time.sleep(0.15)  # let the heartbeat age past the tiny ttl
        barrier = threading.Barrier(6)
        wins = []

        def takeover(worker):
            barrier.wait()
            lease = board.try_claim(job_id, worker, ttl=0.1)
            if lease is not None:
                wins.append(lease)

        threads = [
            threading.Thread(target=takeover, args=(f"t{i}",))
            for i in range(6)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
        assert len(wins) == 1
        assert board.lease_info(job_id)["worker"] == wins[0].worker

    def test_release_then_reclaim(self, board):
        job_id = submitted_job(board)
        lease = board.try_claim(job_id, "one", ttl=30)
        board.release(lease)
        assert board.claimable(job_id, ttl=30)
        assert board.try_claim(job_id, "two", ttl=30) is not None


class TestHeartbeats:
    def test_heartbeat_keeps_the_lease_fresh(self, board):
        job_id = submitted_job(board)
        lease = board.try_claim(job_id, "beater", ttl=0.3)
        for _ in range(4):
            time.sleep(0.1)
            board.heartbeat(lease)
        assert not board.lease_is_stale(board.lease_info(job_id), 0.3)

    def test_heartbeat_after_takeover_raises_lease_lost(self, board):
        job_id = submitted_job(board)
        doomed = board.try_claim(job_id, "doomed", ttl=0.05)
        time.sleep(0.1)
        thief = board.try_claim(job_id, "thief", ttl=0.05)
        assert thief is not None
        with pytest.raises(LeaseLostError):
            board.heartbeat(doomed)
        # The loser's release must not evict the new owner either.
        board.release(doomed)
        assert board.lease_info(job_id)["worker"] == "thief"

    def test_heartbeat_on_released_lease_raises(self, board):
        job_id = submitted_job(board)
        lease = board.try_claim(job_id, "gone", ttl=30)
        board.release(lease)
        with pytest.raises(LeaseLostError):
            board.heartbeat(lease)


class TestStateRecords:
    def test_unknown_job_raises_typed_error(self, board):
        with pytest.raises(InvalidParameterError, match="unknown job id"):
            board.read_state("j" + "0" * 16)
        with pytest.raises(InvalidParameterError, match="unknown job id"):
            board.request_cancel("j" + "0" * 16)

    def test_cancel_marker_round_trip(self, board):
        job_id = submitted_job(board)
        assert not board.cancel_requested(job_id)
        board.request_cancel(job_id)
        board.request_cancel(job_id)  # idempotent
        assert board.cancel_requested(job_id)

    def test_counts_tally_statuses(self, board):
        first = submitted_job(board, tau=10)
        submitted_job(board, tau=11)
        state = board.read_state(first)
        state["status"] = "succeeded"
        board.write_state(first, state)
        assert board.counts() == {"succeeded": 1, "queued": 1}
