"""Unit tests for Intersectional-Coverage (Algorithm 3)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.intersectional_coverage import intersectional_coverage
from repro.crowd.oracle import GroundTruthOracle
from repro.data.schema import Schema
from repro.data.synthetic import intersectional_dataset
from repro.patterns.tabular import assess_tabular_coverage


def run(joint_counts, schema=None, tau=50, n=50, seed=9):
    schema = schema or Schema.from_dict(
        {"gender": ["male", "female"], "race": ["white", "black"]}
    )
    rng = np.random.default_rng(seed)
    dataset = intersectional_dataset(schema, joint_counts, rng=rng)
    report = intersectional_coverage(
        GroundTruthOracle(dataset), schema, tau, n=n, rng=rng,
        dataset_size=len(dataset),
    )
    return report, dataset


class TestAgainstTabularReference:
    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_verdicts_match_fully_labeled_reference(self, seed):
        joint = {
            ("male", "white"): 4000,
            ("female", "white"): 700,
            ("male", "black"): 90,
            ("female", "black"): 12,
        }
        report, dataset = run(joint, seed=seed)
        reference = assess_tabular_coverage(dataset, tau=50)
        for pattern, verdict in report.pattern_report.verdicts.items():
            assert verdict.covered == reference.verdict(pattern).covered, (
                pattern.describe()
            )
        assert set(report.mups) == set(reference.mups)

    def test_exact_counts_for_uncovered_patterns(self):
        joint = {
            ("male", "white"): 4000,
            ("female", "white"): 700,
            ("male", "black"): 20,
            ("female", "black"): 12,
        }
        report, dataset = run(joint)
        reference = assess_tabular_coverage(dataset, tau=50)
        for pattern, verdict in report.pattern_report.verdicts.items():
            if verdict.count_is_exact:
                assert (
                    verdict.count_lower_bound
                    == reference.verdict(pattern).count_lower_bound
                ), pattern.describe()

    def test_three_binary_attributes(self):
        schema = Schema.from_dict(
            {"x1": ["a", "b"], "x2": ["c", "d"], "x3": ["e", "f"]}
        )
        joint = {
            ("a", "c", "e"): 5000,
            ("a", "c", "f"): 300,
            ("a", "d", "e"): 300,
            ("b", "c", "e"): 300,
            ("a", "d", "f"): 40,
            ("b", "c", "f"): 30,
            ("b", "d", "e"): 10,
            ("b", "d", "f"): 5,
        }
        report, dataset = run(joint, schema=schema)
        reference = assess_tabular_coverage(dataset, tau=50)
        assert set(report.mups) == set(reference.mups)


class TestReportShape:
    def test_mup_identification(self):
        joint = {
            ("male", "white"): 5000,
            ("female", "white"): 800,
            ("male", "black"): 120,
            ("female", "black"): 9,
        }
        report, _ = run(joint)
        assert [m.describe() for m in report.mups] == ["female-black"]

    def test_tasks_cover_leaf_report(self):
        joint = {
            ("male", "white"): 500,
            ("female", "white"): 100,
            ("male", "black"): 60,
            ("female", "black"): 60,
        }
        report, _ = run(joint)
        # Roll-up costs nothing beyond the leaf-level work.
        assert report.tasks.total == report.leaf_report.tasks.total

    def test_describe_lists_mups(self):
        joint = {
            ("male", "white"): 5000,
            ("female", "white"): 800,
            ("male", "black"): 120,
            ("female", "black"): 9,
        }
        report, _ = run(joint)
        assert "female-black" in report.describe()


class TestViewValidation:
    """PR-1 view validation extends to intersectional_coverage: bad view
    indices raise up front, before any crowd budget is spent."""

    def _dataset(self):
        schema = Schema.from_dict(
            {"gender": ["male", "female"], "race": ["white", "black"]}
        )
        dataset = intersectional_dataset(
            schema,
            {
                ("male", "white"): 80,
                ("female", "white"): 10,
                ("male", "black"): 8,
                ("female", "black"): 2,
            },
            rng=np.random.default_rng(0),
        )
        return schema, dataset

    def test_negative_view_index_raises(self):
        from repro.errors import InvalidParameterError

        schema, dataset = self._dataset()
        oracle = GroundTruthOracle(dataset)
        with pytest.raises(InvalidParameterError, match="negative"):
            intersectional_coverage(
                oracle, schema, 5, rng=np.random.default_rng(1),
                view=np.array([-1, 3]),
            )
        assert oracle.ledger.total == 0

    def test_out_of_range_view_index_raises(self):
        from repro.errors import InvalidParameterError

        schema, dataset = self._dataset()
        oracle = GroundTruthOracle(dataset)
        with pytest.raises(InvalidParameterError, match="out of range"):
            intersectional_coverage(
                oracle, schema, 5, rng=np.random.default_rng(1),
                view=np.array([0, len(dataset)]), dataset_size=len(dataset),
            )
        assert oracle.ledger.total == 0
