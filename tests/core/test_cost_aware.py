"""Unit tests for cost-aware auditing under size-dependent pricing."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.cost_aware import (
    SpendingOracle,
    choose_set_size,
    cost_aware_group_coverage,
    dollar_cost_upper_bound,
)
from repro.crowd.oracle import GroundTruthOracle
from repro.crowd.pricing import SizeDependentPricing
from repro.data.groups import group
from repro.data.synthetic import binary_dataset
from repro.errors import InvalidParameterError

FEMALE = group(gender="female")


class TestSizeDependentPricing:
    def test_linear_price(self):
        pricing = SizeDependentPricing(base_price=0.02, per_image=0.001)
        assert pricing.query_price(50) == pytest.approx(0.07)
        assert pricing.point_price() == pytest.approx(0.021)

    def test_invalid(self):
        with pytest.raises(InvalidParameterError):
            SizeDependentPricing(base_price=-1)
        with pytest.raises(InvalidParameterError):
            SizeDependentPricing().query_price(0)


class TestDollarBound:
    def test_flat_pricing_favors_moderately_big_sets(self):
        """Under flat pricing the bound falls steeply away from tiny sets,
        then flattens (the N/n term vs the tau*log n isolation term)."""
        flat = SizeDependentPricing(base_price=0.1, per_image=0.0)
        costs = [dollar_cost_upper_bound(10_000, n, 50, flat) for n in (5, 10, 50)]
        assert costs[0] > costs[1] > costs[2]

    def test_steep_pricing_penalizes_big_sets(self):
        steep = SizeDependentPricing(base_price=0.001, per_image=0.05)
        small = dollar_cost_upper_bound(10_000, 5, 50, steep)
        large = dollar_cost_upper_bound(10_000, 400, 50, steep)
        assert small < large

    def test_fee_applied(self):
        pricing = SizeDependentPricing(base_price=0.1, per_image=0.0, service_fee_rate=1.0)
        doubled = dollar_cost_upper_bound(100, 10, 0, pricing)
        pricing_no_fee = SizeDependentPricing(base_price=0.1, per_image=0.0, service_fee_rate=0.0)
        assert doubled == pytest.approx(2 * dollar_cost_upper_bound(100, 10, 0, pricing_no_fee))

    def test_invalid(self):
        with pytest.raises(InvalidParameterError):
            dollar_cost_upper_bound(-1, 10, 5, SizeDependentPricing())


class TestChooseSetSize:
    def test_optimum_moves_with_slope(self):
        flat = SizeDependentPricing(base_price=0.1, per_image=0.0)
        steep = SizeDependentPricing(base_price=0.001, per_image=0.05)
        assert choose_set_size(10_000, 50, flat) > choose_set_size(10_000, 50, steep)

    def test_respects_n_max(self):
        flat = SizeDependentPricing(base_price=0.1, per_image=0.0)
        assert choose_set_size(10_000, 50, flat, n_max=30) <= 30

    def test_invalid(self):
        with pytest.raises(InvalidParameterError):
            choose_set_size(100, 5, SizeDependentPricing(), n_max=0)


class TestSpendingOracle:
    def test_charges_by_display_size(self, rng):
        dataset = binary_dataset(100, 10, rng=rng)
        pricing = SizeDependentPricing(
            base_price=0.02, per_image=0.001, service_fee_rate=0.0
        )
        oracle = SpendingOracle(GroundTruthOracle(dataset), pricing)
        oracle.ask_set(np.arange(10), FEMALE)
        oracle.ask_point(0)
        assert oracle.dollars_spent == pytest.approx(0.03 + 0.021)
        assert oracle.ledger.total == 2

    def test_answers_delegate(self, rng):
        dataset = binary_dataset(100, 10, rng=rng)
        oracle = SpendingOracle(GroundTruthOracle(dataset), SizeDependentPricing())
        members = dataset.positions(FEMALE)
        assert oracle.ask_set(members[:3], FEMALE) is True
        assert oracle.ask_point(int(members[0])) == {"gender": "female"}


class TestCostAwareGroupCoverage:
    def test_verdict_matches_and_spend_below_bound(self, rng):
        dataset = binary_dataset(5_000, 200, rng=rng)
        pricing = SizeDependentPricing(base_price=0.02, per_image=0.002)
        outcome = cost_aware_group_coverage(
            GroundTruthOracle(dataset), FEMALE, 50, pricing, dataset_size=len(dataset)
        )
        assert outcome.result.covered
        assert outcome.dollars_spent <= outcome.predicted_cost_bound

    def test_beats_naive_fixed_n_under_steep_pricing(self, rng):
        """Under steep per-image pricing, the chosen (small) n must spend
        less than blindly using the paper's default n=50."""
        dataset = binary_dataset(5_000, 30, rng=rng)  # uncovered: full scan
        steep = SizeDependentPricing(base_price=0.001, per_image=0.05)

        outcome = cost_aware_group_coverage(
            GroundTruthOracle(dataset), FEMALE, 50, steep, dataset_size=len(dataset)
        )
        naive = SpendingOracle(GroundTruthOracle(dataset), steep)
        from repro.core.group_coverage import group_coverage

        naive_result = group_coverage(naive, FEMALE, 50, n=50, dataset_size=len(dataset))
        assert outcome.result.covered == naive_result.covered is False
        assert outcome.chosen_n < 50
        assert outcome.dollars_spent < naive.dollars_spent

    def test_requires_view_or_size(self, rng):
        dataset = binary_dataset(10, 2, rng=rng)
        with pytest.raises(InvalidParameterError):
            cost_aware_group_coverage(
                GroundTruthOracle(dataset), FEMALE, 5, SizeDependentPricing()
            )
