"""Unit tests for the result dataclasses and their rendering."""

from __future__ import annotations

import pytest

from repro.core.results import (
    ClassifierCoverageResult,
    GroupCoverageResult,
    GroupEntry,
    MultipleCoverageReport,
    TaskUsage,
)
from repro.data.groups import SuperGroup, group

FEMALE = group(gender="female")


class TestTaskUsage:
    def test_total_and_addition(self):
        a = TaskUsage(3, 4)
        b = TaskUsage(1, 2)
        combined = a + b
        assert combined.n_set_queries == 4
        assert combined.n_point_queries == 6
        assert combined.total == 10

    def test_default_is_zero(self):
        assert TaskUsage().total == 0


class TestGroupCoverageResultDescribe:
    def test_covered_rendering(self):
        result = GroupCoverageResult(
            predicate=FEMALE, covered=True, count=50, tau=50, tasks=TaskUsage(70, 0)
        )
        text = result.describe()
        assert "covered" in text and "≥" in text and "70" in text

    def test_uncovered_rendering(self):
        result = GroupCoverageResult(
            predicate=FEMALE, covered=False, count=12, tau=50, tasks=TaskUsage(200, 0)
        )
        text = result.describe()
        assert "UNCOVERED" in text and "= 12" in text


class TestGroupEntry:
    def test_describe_with_supergroup(self):
        sg = SuperGroup([group(race="a"), group(race="b")])
        entry = GroupEntry(
            group=group(race="a"), covered=False, count=5,
            count_is_exact=True, via_supergroup=sg,
        )
        assert "via super-group" in entry.describe()

    def test_describe_singleton_hides_supergroup(self):
        sg = SuperGroup([group(race="a")])
        entry = GroupEntry(
            group=group(race="a"), covered=True, count=50,
            count_is_exact=False, via_supergroup=sg,
        )
        assert "via super-group" not in entry.describe()
        assert ">=" in entry.describe()


class TestMultipleCoverageReport:
    def _report(self):
        entries = (
            GroupEntry(group(race="a"), True, 50, False),
            GroupEntry(group(race="b"), False, 7, True),
        )
        return MultipleCoverageReport(
            entries=entries,
            super_groups=(SuperGroup([group(race="a")]), SuperGroup([group(race="b")])),
            sampled_counts={group(race="a"): 9, group(race="b"): 1},
            tasks=TaskUsage(100, 100),
        )

    def test_entry_lookup(self):
        report = self._report()
        assert report.entry_for(group(race="b")).count == 7
        with pytest.raises(KeyError):
            report.entry_for(group(race="zzz"))

    def test_uncovered_groups(self):
        assert self._report().uncovered_groups == (group(race="b"),)

    def test_describe_lists_everything(self):
        text = self._report().describe()
        assert "race=a" in text and "race=b" in text and "200 tasks" in text


class TestClassifierCoverageResultDescribe:
    def test_mentions_strategy_and_precision(self):
        result = ClassifierCoverageResult(
            group=FEMALE, covered=True, count=50, tau=50, strategy="partition",
            precision_estimate=0.98, verified_count=50, tasks=TaskUsage(5, 20),
        )
        text = result.describe()
        assert "partition" in text and "98.0%" in text and "25" in text
