"""Unit tests for Multiple-Coverage (Algorithm 2)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.multiple_coverage import multiple_coverage
from repro.crowd.oracle import GroundTruthOracle
from repro.data.groups import Group, group
from repro.data.synthetic import single_attribute_dataset
from repro.errors import InvalidParameterError


def run(counts, tau=50, n=50, c=2.0, seed=5, **kwargs):
    rng = np.random.default_rng(seed)
    dataset = single_attribute_dataset(counts, attribute="race", rng=rng)
    groups = [Group({"race": v}) for v in counts]
    oracle = GroundTruthOracle(dataset)
    report = multiple_coverage(
        oracle, groups, tau, n=n, c=c, rng=rng, dataset_size=len(dataset), **kwargs
    )
    return report, dataset, oracle


class TestVerdicts:
    def test_all_verdicts_correct(self):
        counts = {"white": 5000, "black": 200, "asian": 30, "native": 8}
        report, dataset, _ = run(counts)
        for entry in report.entries:
            expected = counts[entry.group.value_of("race")] >= 50
            assert entry.covered is expected, entry.describe()

    def test_uncovered_counts_are_exact_for_singletons(self):
        counts = {"white": 5000, "asian": 30}
        report, _, _ = run(counts)
        asian = report.entry_for(group(race="asian"))
        assert not asian.covered
        assert asian.count == 30 and asian.count_is_exact

    def test_supergroup_members_share_uncovered_verdict(self):
        # Two tiny minorities merge and stay uncovered together.
        counts = {"white": 9800, "m1": 10, "m2": 15}
        report, _, _ = run(counts)
        for value in ("m1", "m2"):
            entry = report.entry_for(group(race=value))
            assert not entry.covered
            assert entry.via_supergroup is not None

    def test_attribute_supergroup_members_gives_exact_counts(self):
        counts = {"white": 9800, "m1": 10, "m2": 15}
        report, _, _ = run(counts, attribute_supergroup_members=True)
        m1 = report.entry_for(group(race="m1"))
        m2 = report.entry_for(group(race="m2"))
        if len(m1.via_supergroup) > 1:  # merged (the expected path)
            assert m1.count_is_exact and m1.count == 10
            assert m2.count_is_exact and m2.count == 15

    def test_entries_in_input_order(self):
        counts = {"white": 500, "black": 400, "asian": 300}
        report, _, _ = run(counts)
        assert [e.group.value_of("race") for e in report.entries] == [
            "white", "black", "asian",
        ]

    def test_sampled_counts_recorded(self):
        counts = {"white": 900, "black": 100}
        report, _, _ = run(counts, tau=50)
        assert sum(report.sampled_counts.values()) == 100  # c * tau labels


class TestCostBehavior:
    def test_sampling_credit_makes_majority_cheap(self):
        """With c=2 the majority group is fully pre-credited by samples:
        its Group-Coverage run costs zero set queries."""
        counts = {"white": 9900, "rare": 100}
        report, _, oracle = run(counts, tau=50)
        # 100 point queries for sampling; the white run needs no set query
        # beyond what `rare` consumed. Sanity: total point queries == c*tau.
        assert report.tasks.n_point_queries == 100

    def test_effective_aggregation_beats_brute_force(self):
        from repro.core.group_coverage import group_coverage

        counts = {"white": 9955, "m1": 10, "m2": 15, "m3": 20}
        report, dataset, _ = run(counts)
        brute = GroundTruthOracle(dataset)
        for value in counts:
            group_coverage(brute, group(race=value), 50, n=50, dataset_size=len(dataset))
        assert report.tasks.total < brute.ledger.total

    def test_covered_supergroup_triggers_member_reruns(self):
        """Adversarial: merged minorities jointly covered -> per-member
        re-runs; every member verdict must still be correct."""
        counts = {"white": 9910, "m1": 30, "m2": 30, "m3": 30}
        report, _, _ = run(counts)
        for value in ("m1", "m2", "m3"):
            assert not report.entry_for(group(race=value)).covered

    def test_c_zero_skips_sampling(self):
        counts = {"white": 900, "black": 100}
        report, _, _ = run(counts, c=0.0)
        assert report.tasks.n_point_queries == 0


class TestValidation:
    def test_empty_groups_rejected(self, rng):
        dataset = single_attribute_dataset({"a": 10, "b": 10}, rng=rng)
        with pytest.raises(InvalidParameterError):
            multiple_coverage(
                GroundTruthOracle(dataset), [], 50, rng=rng, dataset_size=20
            )

    def test_invalid_tau_rejected(self, rng):
        dataset = single_attribute_dataset({"a": 10, "b": 10}, rng=rng)
        with pytest.raises(InvalidParameterError):
            multiple_coverage(
                GroundTruthOracle(dataset),
                [group(a="x")],
                0,
                rng=rng,
                dataset_size=20,
            )

    def test_requires_view_or_size(self, rng):
        dataset = single_attribute_dataset({"a": 10, "b": 10}, rng=rng)
        with pytest.raises(InvalidParameterError):
            multiple_coverage(
                GroundTruthOracle(dataset), [group(a="x")], 5, rng=rng
            )

    def test_entry_for_unknown_group_raises(self):
        report, _, _ = run({"white": 100, "black": 100}, tau=5)
        with pytest.raises(KeyError):
            report.entry_for(group(race="martian"))
