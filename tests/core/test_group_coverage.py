"""Unit tests for Group-Coverage (Algorithm 1) — the core contribution."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.bounds import lower_bound_tasks
from repro.core.group_coverage import group_coverage
from repro.crowd.oracle import GroundTruthOracle
from repro.data.groups import SuperGroup, group
from repro.data.synthetic import (
    adversarial_tightness_dataset,
    binary_dataset,
    single_attribute_dataset,
)
from repro.errors import InvalidParameterError

FEMALE = group(gender="female")


def run(dataset, tau, n, predicate=FEMALE, view=None):
    oracle = GroundTruthOracle(dataset)
    result = group_coverage(
        oracle, predicate, tau, n=n,
        view=view, dataset_size=None if view is not None else len(dataset),
    )
    return result, oracle


class TestVerdictCorrectness:
    @pytest.mark.parametrize("n_females,tau,expected", [
        (0, 5, False),
        (4, 5, False),
        (5, 5, True),
        (6, 5, True),
        (100, 5, True),
        (100, 100, True),
        (99, 100, False),
    ])
    def test_verdicts(self, rng, n_females, tau, expected):
        dataset = binary_dataset(500, n_females, rng=rng)
        result, _ = run(dataset, tau, n=25)
        assert result.covered is expected

    def test_exact_count_when_uncovered(self, rng):
        for n_females in (0, 1, 7, 30, 49):
            dataset = binary_dataset(2000, n_females, rng=rng)
            result, _ = run(dataset, 50, n=50)
            assert not result.covered
            assert result.count == n_females

    def test_discovered_indices_are_the_members(self, rng):
        dataset = binary_dataset(1000, 12, rng=rng)
        result, _ = run(dataset, 50, n=50)
        assert sorted(result.discovered_indices) == sorted(
            dataset.positions(FEMALE).tolist()
        )

    def test_count_equals_tau_when_covered(self, rng):
        dataset = binary_dataset(1000, 300, rng=rng)
        result, _ = run(dataset, 50, n=50)
        assert result.covered and result.count == 50


class TestEdgeCases:
    def test_tau_zero_is_free(self, rng):
        dataset = binary_dataset(100, 10, rng=rng)
        result, oracle = run(dataset, 0, n=10)
        assert result.covered and result.count == 0
        assert oracle.ledger.total == 0

    def test_empty_view(self, rng):
        dataset = binary_dataset(10, 3, rng=rng)
        result, oracle = run(dataset, 5, n=4, view=np.array([], dtype=np.int64))
        assert not result.covered and result.count == 0
        assert oracle.ledger.total == 0

    def test_n_equal_one_degenerates_to_point_scanning(self, rng):
        dataset = binary_dataset(40, 40, rng=rng)  # every object matches
        result, oracle = run(dataset, 5, n=1)
        assert result.covered
        assert oracle.ledger.n_set_queries == 5  # stops at tau singleton yeses

    def test_n_larger_than_dataset(self, rng):
        dataset = binary_dataset(30, 4, rng=rng)
        result, _ = run(dataset, 5, n=1000)
        assert not result.covered and result.count == 4

    def test_single_object_dataset(self):
        dataset = binary_dataset(1, 1, placement="front")
        result, _ = run(dataset, 1, n=10)
        assert result.covered and result.count == 1

    def test_view_restricts_search(self, rng):
        dataset = binary_dataset(100, 50, placement="front")
        # Search only the female-free back half.
        result, _ = run(dataset, 5, n=10, view=np.arange(50, 100))
        assert not result.covered and result.count == 0

    def test_invalid_parameters(self, rng):
        dataset = binary_dataset(10, 2, rng=rng)
        oracle = GroundTruthOracle(dataset)
        with pytest.raises(InvalidParameterError):
            group_coverage(oracle, FEMALE, 5, n=0, dataset_size=10)
        with pytest.raises(InvalidParameterError):
            group_coverage(oracle, FEMALE, -1, n=5, dataset_size=10)
        with pytest.raises(InvalidParameterError):
            group_coverage(oracle, FEMALE, 5, n=5)  # neither view nor size

    def test_negative_view_index_rejected(self, rng):
        dataset = binary_dataset(10, 2, rng=rng)
        oracle = GroundTruthOracle(dataset)
        with pytest.raises(InvalidParameterError):
            group_coverage(oracle, FEMALE, 5, view=np.array([0, -1, 2]))

    def test_view_index_beyond_dataset_size_rejected(self, rng):
        dataset = binary_dataset(10, 2, rng=rng)
        oracle = GroundTruthOracle(dataset)
        with pytest.raises(InvalidParameterError):
            group_coverage(
                oracle, FEMALE, 5, view=np.array([0, 5, 10]), dataset_size=10
            )
        # Without dataset_size the upper bound is unknowable and unchecked.
        result = group_coverage(oracle, FEMALE, 1, view=np.array([0, 5, 9]))
        assert result.tau == 1

    def test_negative_dataset_size_rejected(self, rng):
        dataset = binary_dataset(10, 2, rng=rng)
        oracle = GroundTruthOracle(dataset)
        with pytest.raises(InvalidParameterError):
            group_coverage(oracle, FEMALE, 5, dataset_size=-1)


class TestTaskAccounting:
    def test_tasks_counted_via_ledger(self, rng):
        dataset = binary_dataset(200, 10, rng=rng)
        result, oracle = run(dataset, 50, n=20)
        assert result.tasks.n_set_queries == oracle.ledger.n_set_queries
        assert result.tasks.n_point_queries == 0

    def test_nested_runs_attribute_separately(self, rng):
        dataset = binary_dataset(200, 100, rng=rng)
        oracle = GroundTruthOracle(dataset)
        first = group_coverage(oracle, FEMALE, 10, n=20, dataset_size=200)
        second = group_coverage(oracle, FEMALE, 20, n=20, dataset_size=200)
        assert first.tasks.total + second.tasks.total == oracle.ledger.total

    def test_uncovered_pays_at_least_the_lower_bound(self, rng):
        dataset = binary_dataset(1000, 10, rng=rng)
        result, _ = run(dataset, 50, n=50)
        assert result.tasks.total >= lower_bound_tasks(1000, 50)

    def test_stays_under_the_concrete_upper_bound(self, rng):
        """Tasks <= ceil(N/n) + tau * (2*ceil(log2 n) + 1): every one of the
        <= tau yes-leaves pays at most one root-to-leaf path of <= log2(n)
        levels with <= 2 queries per level."""
        for n_females, tau, n in [(50, 50, 50), (30, 50, 20), (500, 100, 64)]:
            dataset = binary_dataset(5000, n_females, rng=rng)
            result, _ = run(dataset, tau, n=n)
            ceiling = np.ceil(5000 / n) + tau * (2 * np.ceil(np.log2(n)) + 1)
            assert result.tasks.total <= ceiling

    def test_pruning_pays_off_for_rare_groups(self, rng):
        """A rare uncovered group must cost far less than labeling all."""
        dataset = binary_dataset(10_000, 5, rng=rng)
        result, _ = run(dataset, 50, n=50)
        assert result.tasks.total < 0.05 * 10_000


class TestSiblingInference:
    def test_no_task_for_implied_sibling(self):
        """With one member at a known position, the d&c must exploit
        implied siblings: count tasks on a fully deterministic layout."""
        dataset = binary_dataset(8, 1, placement="front")  # member at index 0
        result, oracle = run(dataset, 5, n=8)
        # root yes, then left-yes/right-? chains: the right siblings of
        # "yes" lefts must still be asked, but "no" lefts imply sibling yes
        # for free. Exact expectation for member-at-0, n=8:
        # [0-7]y, [0-3]y, [4-7]n(pruned by sibling rule? no - right child),
        # Walk: root(1) -> children [0-3](2) yes, [4-7](3) no ->
        # [0-1](4) yes, [2-3](5) no -> [0](6) yes, [1](7) no.
        assert not result.covered and result.count == 1
        assert oracle.ledger.n_set_queries == 7

    def test_member_at_back_uses_implied_yes(self):
        """Member at the last position: every left child answers no, so
        every right sibling is implied — fewer tasks than member-at-front."""
        dataset = binary_dataset(8, 1, placement="back")
        result, oracle = run(dataset, 5, n=8)
        assert not result.covered and result.count == 1
        # root(1), [0-3](2) no -> [4-7] implied, [4-5](3) no -> [6-7]
        # implied, [6](4) no -> [7] implied (size 1, yes).
        assert oracle.ledger.n_set_queries == 4


class TestPredicateKinds:
    def test_supergroup_coverage(self, rng):
        dataset = single_attribute_dataset(
            {"white": 900, "black": 30, "asian": 25}, rng=rng
        )
        sg = SuperGroup([group(race="black"), group(race="asian")])
        result, _ = run(dataset, 50, n=50, predicate=sg)
        assert result.covered  # 30 + 25 = 55 >= 50

    def test_supergroup_uncovered_exact_union_count(self, rng):
        dataset = single_attribute_dataset(
            {"white": 950, "black": 20, "asian": 15}, rng=rng
        )
        sg = SuperGroup([group(race="black"), group(race="asian")])
        result, _ = run(dataset, 50, n=50, predicate=sg)
        assert not result.covered and result.count == 35


class TestAdversarialLayout:
    def test_tightness_construction_is_expensive_but_exact(self):
        dataset = adversarial_tightness_dataset(1024, 32)
        result, _ = run(dataset, 32, n=1024)
        assert not result.covered
        assert result.count == 31
        # The uniform spread forces deep isolation of every member.
        assert result.tasks.total > 31 * np.log2(1024 / 32)
