"""Unit tests for Aggregate (super-group formation, Algorithm 6)."""

from __future__ import annotations

import pytest

from repro.core.aggregate import aggregate_groups, expected_count
from repro.core.sampling import LabeledPool
from repro.data.groups import Group, group
from repro.errors import InvalidParameterError


def pool_with(counts: dict[str, int], attribute: str = "race") -> LabeledPool:
    pool = LabeledPool()
    index = 0
    for value, count in counts.items():
        for _ in range(count):
            pool.add(index, {attribute: value})
            index += 1
    return pool


class TestExpectedCount:
    def test_formula(self):
        pool = pool_with({"white": 90, "black": 10})
        assert expected_count(pool, group(race="black"), 1000) == pytest.approx(100.0)

    def test_empty_pool(self):
        assert expected_count(LabeledPool(), group(race="black"), 1000) == 0.0


class TestAggregation:
    def test_minorities_merge_when_expected_sum_below_tau(self):
        # black and asian each expected 20 in N=1000 -> merged; white alone.
        pool = pool_with({"white": 96, "black": 2, "asian": 2})
        groups = [group(race=v) for v in ("white", "black", "asian")]
        supers = aggregate_groups(pool, 1000, 50, groups)
        sizes = sorted(len(s) for s in supers)
        assert sizes == [1, 2]
        merged = next(s for s in supers if len(s) == 2)
        assert set(merged.members) == {group(race="black"), group(race="asian")}

    def test_merge_stops_when_sum_reaches_tau(self):
        # Expected counts 30, 30, 30: first two merge? 30 + 30 = 60 >= 50 ->
        # no; each stands alone once the running sum would cross tau.
        pool = pool_with({"a": 3, "b": 3, "c": 3, "major": 91})
        groups = [Group({"race": v}) for v in ("a", "b", "c", "major")]
        supers = aggregate_groups(pool, 1000, 50, groups)
        assert sorted(len(s) for s in supers) == [1, 1, 1, 1]

    def test_unsampled_groups_all_merge(self):
        # Nothing sampled for the minorities: expected counts are 0, so all
        # of them fold into one super-group (the adversarial trap).
        pool = pool_with({"major": 100})
        groups = [Group({"race": v}) for v in ("major", "m1", "m2", "m3")]
        supers = aggregate_groups(pool, 1000, 50, groups)
        merged = [s for s in supers if len(s) == 3]
        assert len(merged) == 1
        assert set(merged[0].members) == {
            Group({"race": "m1"}), Group({"race": "m2"}), Group({"race": "m3"})
        }

    def test_partition_property(self):
        pool = pool_with({"a": 1, "b": 1, "c": 50, "d": 48})
        groups = [Group({"race": v}) for v in ("a", "b", "c", "d")]
        supers = aggregate_groups(pool, 2000, 50, groups)
        flattened = [member for s in supers for member in s]
        assert sorted(g.describe() for g in flattened) == sorted(
            g.describe() for g in groups
        )

    def test_ascending_order_by_sampled_count(self):
        pool = pool_with({"big": 80, "mid": 15, "tiny": 5})
        groups = [Group({"race": v}) for v in ("big", "mid", "tiny")]
        supers = aggregate_groups(pool, 100, 1000, groups)
        # Everything expected-uncovered (tau=1000): single merged group in
        # ascending sampled order.
        assert len(supers) == 1
        assert [g.value_of("race") for g in supers[0]] == ["tiny", "mid", "big"]

    def test_empty_groups(self):
        assert aggregate_groups(LabeledPool(), 100, 50, []) == ()

    def test_duplicate_groups_rejected(self):
        with pytest.raises(InvalidParameterError):
            aggregate_groups(
                LabeledPool(), 100, 50, [group(race="a"), group(race="a")]
            )

    def test_invalid_tau(self):
        with pytest.raises(InvalidParameterError):
            aggregate_groups(LabeledPool(), 100, 0, [group(race="a"), group(race="b")])


class TestSiblingConstraint:
    def _pool(self):
        pool = LabeledPool()
        for i in range(100):
            pool.add(i, {"gender": "male", "race": "white"})
        return pool

    def test_multi_true_only_merges_siblings(self):
        pool = self._pool()
        # Four unsampled leaves: (f,b) and (f,a) share gender=female (differ
        # on race only) -> mergeable; (m,b) differs from (f,a) on both.
        leaves = [
            group(gender="female", race="black"),
            group(gender="female", race="asian"),
            group(gender="male", race="black"),
            group(gender="male", race="asian"),
        ]
        supers = aggregate_groups(pool, 10_000, 50, leaves, multi=True)
        for s in supers:
            members = list(s)
            for i in range(len(members)):
                for j in range(i + 1, len(members)):
                    assert members[i].shares_parent_with(members[j]), (
                        f"{members[i]} and {members[j]} merged but are not siblings"
                    )

    def test_multi_false_merges_across_parents(self):
        pool = self._pool()
        leaves = [
            group(gender="female", race="black"),
            group(gender="male", race="asian"),
        ]
        supers = aggregate_groups(pool, 10_000, 50, leaves, multi=False)
        assert len(supers) == 1 and len(supers[0]) == 2

    def test_three_way_sibling_merge_along_one_attribute(self):
        pool = self._pool()
        leaves = [
            group(gender="female", race="black"),
            group(gender="female", race="asian"),
            group(gender="female", race="hispanic"),
        ]
        supers = aggregate_groups(pool, 10_000, 50, leaves, multi=True)
        assert len(supers) == 1 and len(supers[0]) == 3
