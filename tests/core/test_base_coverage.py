"""Unit tests for Base-Coverage (Algorithm 7)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.base_coverage import base_coverage
from repro.crowd.oracle import GroundTruthOracle
from repro.data.groups import group
from repro.data.synthetic import binary_dataset
from repro.errors import InvalidParameterError

FEMALE = group(gender="female")


class TestBaseCoverage:
    def test_covered_stops_at_tau_th_member(self):
        dataset = binary_dataset(100, 10, placement="front")
        oracle = GroundTruthOracle(dataset)
        result = base_coverage(oracle, FEMALE, 5, dataset_size=100)
        assert result.covered
        assert result.tasks.n_point_queries == 5  # members are up front
        assert result.count == 5

    def test_uncovered_scans_everything(self, rng):
        dataset = binary_dataset(300, 4, rng=rng)
        oracle = GroundTruthOracle(dataset)
        result = base_coverage(oracle, FEMALE, 5, dataset_size=300)
        assert not result.covered
        assert result.count == 4
        assert result.tasks.n_point_queries == 300

    def test_worst_case_members_at_back(self):
        dataset = binary_dataset(100, 5, placement="back")
        oracle = GroundTruthOracle(dataset)
        result = base_coverage(oracle, FEMALE, 5, dataset_size=100)
        assert result.covered
        assert result.tasks.n_point_queries == 100

    def test_discovered_indices(self):
        dataset = binary_dataset(50, 3, placement="front")
        result = base_coverage(
            GroundTruthOracle(dataset), FEMALE, 10, dataset_size=50
        )
        assert result.discovered_indices == (0, 1, 2)

    def test_uses_point_queries_only(self, rng):
        dataset = binary_dataset(60, 30, rng=rng)
        result = base_coverage(
            GroundTruthOracle(dataset), FEMALE, 10, dataset_size=60
        )
        assert result.tasks.n_set_queries == 0

    def test_tau_zero(self, rng):
        dataset = binary_dataset(10, 5, rng=rng)
        result = base_coverage(GroundTruthOracle(dataset), FEMALE, 0, dataset_size=10)
        assert result.covered and result.tasks.total == 0

    def test_view_restriction(self):
        dataset = binary_dataset(100, 50, placement="front")
        result = base_coverage(
            GroundTruthOracle(dataset), FEMALE, 5, view=np.arange(50, 100)
        )
        assert not result.covered and result.count == 0

    def test_invalid_parameters(self, rng):
        dataset = binary_dataset(10, 2, rng=rng)
        with pytest.raises(InvalidParameterError):
            base_coverage(GroundTruthOracle(dataset), FEMALE, -1, dataset_size=10)
        with pytest.raises(InvalidParameterError):
            base_coverage(GroundTruthOracle(dataset), FEMALE, 5)
