"""Fidelity tests: the paper's own worked examples, traced exactly.

These pin our implementation to the paper's published traces — if a
refactor changes query order or the sibling/checked bookkeeping, these
fail even when the verdicts stay correct.
"""

from __future__ import annotations

import numpy as np

from repro.core.group_coverage import group_coverage
from repro.crowd.oracle import GroundTruthOracle
from repro.data.dataset import LabeledDataset
from repro.data.groups import group
from repro.data.schema import Schema

SHAPE_SCHEMA = Schema.from_dict({"shape": ["square", "triangle"]})
TRIANGLE = group(shape="triangle")


def shapes_dataset(layout: str) -> LabeledDataset:
    """Build a dataset from the paper's pictogram string (s=square,
    t=triangle)."""
    codes = np.array(
        [[1 if symbol == "t" else 0] for symbol in layout], dtype=np.int16
    )
    return LabeledDataset(SHAPE_SCHEMA, codes)


class TestFigure4RunningExample:
    """§3.1's running example: 16 images, tau=3, check triangle coverage.

    The paper's layout (Figure 4): ssss t ss t | ssss tt s t — triangles
    at positions 4, 7, 12, 13, 15. The narrated trace: root yes (cnt=1),
    both halves yes (cnt=2), the left-most quarter answers no (its sibling
    is implied), same on the right, then the first two level-4 queries are
    yes, cnt reaches 3 and the algorithm stops — "the algorithm issues
    seven queries to the crowd before it stops".
    """

    def test_seven_queries_and_covered(self):
        dataset = shapes_dataset("sssstsstssssttst")
        assert dataset.count(TRIANGLE) == 5
        oracle = GroundTruthOracle(dataset)
        result = group_coverage(oracle, TRIANGLE, tau=3, n=16, dataset_size=16)
        assert result.covered
        assert result.count == 3
        assert oracle.ledger.n_set_queries == 7  # the paper's number

    def test_trace_query_ranges(self):
        """Replay the exact ranges the paper's Figure 4 narrates."""
        dataset = shapes_dataset("sssstsstssssttst")
        asked: list[tuple[int, int]] = []

        class TracingOracle(GroundTruthOracle):
            def _answer_set(self, indices, predicate):
                asked.append((int(indices[0]), int(indices[-1])))
                return super()._answer_set(indices, predicate)

        group_coverage(
            TracingOracle(dataset), TRIANGLE, tau=3, n=16, dataset_size=16
        )
        assert asked == [
            (0, 15),   # root: yes -> cnt=1
            (0, 7),    # left half: yes (sets checked)
            (8, 15),   # right half: yes -> cnt=2
            (0, 3),    # left quarter: no -> (4,7) implied yes, no task
            (8, 11),   # third quarter: no -> (12,15) implied yes, no task
            (4, 5),    # first level-4 set: yes (sets checked)
            (6, 7),    # second level-4 set: yes -> cnt=3 -> stop
        ]


class TestSection4SupergroupExamples:
    """§4's Asian-Female / Asian-Male arithmetic, via the combiner."""

    def test_15_plus_20_keeps_asian_uncovered(self):
        from repro.data.synthetic import intersectional_dataset
        from repro.patterns.tabular import assess_tabular_coverage
        from repro.patterns.pattern import Pattern

        schema = Schema.from_dict(
            {"gender": ["male", "female"], "race": ["white", "asian"]}
        )
        dataset = intersectional_dataset(
            schema,
            {
                ("male", "white"): 500,
                ("female", "white"): 400,
                ("female", "asian"): 15,
                ("male", "asian"): 20,
            },
            shuffle=False,
        )
        report = assess_tabular_coverage(dataset, tau=50)
        asian = Pattern.from_mapping(schema, {"race": "asian"})
        assert not report.verdict(asian).covered
        assert report.verdict(asian).count_lower_bound == 35

    def test_28_plus_32_covers_asian_without_extra_tasks(self):
        from repro.data.synthetic import intersectional_dataset
        from repro.patterns.tabular import assess_tabular_coverage
        from repro.patterns.pattern import Pattern

        schema = Schema.from_dict(
            {"gender": ["male", "female"], "race": ["white", "asian"]}
        )
        dataset = intersectional_dataset(
            schema,
            {
                ("male", "white"): 500,
                ("female", "white"): 400,
                ("female", "asian"): 28,
                ("male", "asian"): 32,
            },
            shuffle=False,
        )
        report = assess_tabular_coverage(dataset, tau=50)
        asian = Pattern.from_mapping(schema, {"race": "asian"})
        assert report.verdict(asian).covered
        assert report.verdict(asian).count_lower_bound == 60
