"""Unit tests for the execution-tree structures."""

from __future__ import annotations

import pytest

from repro.core.tree import PrunableQueue, TreeNode
from repro.errors import InvalidParameterError


class TestTreeNode:
    def test_size_and_flags(self):
        node = TreeNode(0, 9)
        assert node.size == 10
        assert node.is_root
        assert not node.is_left_child

    def test_split_halves(self):
        node = TreeNode(0, 9)
        left, right = node.split()
        assert (left.b_index, left.e_index) == (0, 4)
        assert (right.b_index, right.e_index) == (5, 9)
        assert left.parent is node and right.parent is node
        assert left.is_left_child and not right.is_left_child

    def test_split_odd_size(self):
        left, right = TreeNode(0, 6).split()
        assert (left.b_index, left.e_index) == (0, 3)
        assert (right.b_index, right.e_index) == (4, 6)

    def test_split_two_elements(self):
        left, right = TreeNode(3, 4).split()
        assert left.size == 1 and right.size == 1

    def test_split_singleton_rejected(self):
        with pytest.raises(InvalidParameterError):
            TreeNode(2, 2).split()

    def test_invalid_range_rejected(self):
        with pytest.raises(InvalidParameterError):
            TreeNode(5, 4)
        with pytest.raises(InvalidParameterError):
            TreeNode(-1, 4)

    def test_checked_default_false(self):
        assert TreeNode(0, 1).checked is False


class TestPrunableQueue:
    def test_fifo_order(self):
        queue = PrunableQueue()
        nodes = [TreeNode(i, i) for i in range(5)]
        for node in nodes:
            queue.add(node)
        assert [queue.pop() for _ in range(5)] == nodes

    def test_remove_specific_node(self):
        queue = PrunableQueue()
        a, b, c = TreeNode(0, 0), TreeNode(1, 1), TreeNode(2, 2)
        for node in (a, b, c):
            queue.add(node)
        assert queue.remove(b) is b
        assert queue.pop() is a
        assert queue.pop() is c
        assert not queue

    def test_len_tracks_live_nodes(self):
        queue = PrunableQueue()
        a, b = TreeNode(0, 0), TreeNode(1, 1)
        queue.add(a)
        queue.add(b)
        assert len(queue) == 2
        queue.remove(a)
        assert len(queue) == 1

    def test_pop_empty_raises(self):
        with pytest.raises(IndexError):
            PrunableQueue().pop()

    def test_remove_absent_raises(self):
        queue = PrunableQueue()
        with pytest.raises(InvalidParameterError):
            queue.remove(TreeNode(0, 0))

    def test_double_add_rejected(self):
        queue = PrunableQueue()
        node = TreeNode(0, 0)
        queue.add(node)
        with pytest.raises(InvalidParameterError):
            queue.add(node)

    def test_readd_after_pop_allowed(self):
        queue = PrunableQueue()
        node = TreeNode(0, 0)
        queue.add(node)
        queue.pop()
        queue.add(node)  # the sibling-replacement flow re-processes nodes
        assert queue.pop() is node

    def test_peek_returns_front_without_consuming(self):
        queue = PrunableQueue()
        first, second = TreeNode(0, 1), TreeNode(2, 3)
        queue.add(first)
        queue.add(second)
        assert queue.peek() is first
        assert len(queue) == 2
        assert queue.pop() is first

    def test_peek_skips_removed_front(self):
        queue = PrunableQueue()
        first, second = TreeNode(0, 1), TreeNode(2, 3)
        queue.add(first)
        queue.add(second)
        queue.remove(first)
        assert queue.peek() is second

    def test_peek_empty_returns_none(self):
        assert PrunableQueue().peek() is None

    def test_iteration_yields_live_nodes_in_fifo_order(self):
        queue = PrunableQueue()
        nodes = [TreeNode(i, i) for i in range(5)]
        for node in nodes:
            queue.add(node)
        queue.remove(nodes[1])
        queue.remove(nodes[3])
        assert list(queue) == [nodes[0], nodes[2], nodes[4]]
        assert len(queue) == 3  # iteration does not consume

    def test_iteration_after_remove_and_readd_skips_the_stale_entry(self):
        queue = PrunableQueue()
        first, second = TreeNode(0, 0), TreeNode(1, 1)
        queue.add(first)
        queue.add(second)
        queue.remove(first)
        queue.add(first)  # older deque entry for `first` is now stale
        assert list(queue) == [second, first]
