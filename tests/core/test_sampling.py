"""Unit tests for LabelSamples and the labeled pool."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.sampling import LabeledPool, label_samples
from repro.crowd.oracle import GroundTruthOracle
from repro.data.groups import Negation, SuperGroup, group
from repro.data.synthetic import binary_dataset
from repro.errors import InvalidParameterError

FEMALE = group(gender="female")


class TestLabeledPool:
    def test_count_and_members(self):
        pool = LabeledPool()
        pool.add(3, {"gender": "female"})
        pool.add(7, {"gender": "male"})
        pool.add(9, {"gender": "female"})
        assert pool.count(FEMALE) == 2
        assert sorted(pool.members(FEMALE)) == [3, 9]
        assert len(pool) == 3
        assert 3 in pool and 4 not in pool

    def test_counts_compound_predicates(self):
        pool = LabeledPool()
        pool.add(0, {"race": "black"})
        pool.add(1, {"race": "asian"})
        pool.add(2, {"race": "white"})
        sg = SuperGroup([group(race="black"), group(race="asian")])
        assert pool.count(sg) == 2
        assert pool.count(Negation(sg)) == 1

    def test_relabel_overwrites(self):
        pool = LabeledPool()
        pool.add(0, {"gender": "male"})
        pool.add(0, {"gender": "female"})
        assert len(pool) == 1
        assert pool.count(FEMALE) == 1

    def test_relabel_clears_stale_attributes(self):
        pool = LabeledPool()
        pool.add(0, {"gender": "female", "race": "black"})
        pool.add(0, {"gender": "female"})
        assert pool.count(group(race="black")) == 0
        assert pool.count(FEMALE) == 1

    def test_members_preserve_insertion_order(self):
        pool = LabeledPool()
        for index in (9, 2, 7, 4):
            pool.add(index, {"gender": "female"})
        pool.add(2, {"gender": "female"})  # relabel keeps position
        assert pool.members(FEMALE) == (9, 2, 7, 4)

    def test_vectorized_count_matches_row_at_a_time(self, rng):
        """The columnar pool must agree with matches_row over every row."""
        values = {"gender": ["male", "female"], "race": ["white", "black", "asian"]}
        pool = LabeledPool()
        for index in range(200):
            pool.add(index, {
                name: domain[int(rng.integers(len(domain)))]
                for name, domain in values.items()
            })
        predicates = [
            FEMALE,
            group(gender="female", race="asian"),
            SuperGroup([group(race="black"), group(race="asian")]),
            Negation(group(gender="male")),
            group(age="old"),  # attribute never labeled
        ]
        for predicate in predicates:
            expected = sum(
                1 for labels in pool.rows.values() if predicate.matches_row(labels)
            )
            assert pool.count(predicate) == expected
            assert pool.members(predicate) == tuple(
                index
                for index, labels in pool.rows.items()
                if predicate.matches_row(labels)
            )


class TestLabelSamples:
    def test_sample_size_and_view_shrink(self, rng):
        dataset = binary_dataset(200, 40, rng=rng)
        oracle = GroundTruthOracle(dataset)
        view, pool = label_samples(oracle, np.arange(200), tau=25, c=2.0, rng=rng)
        assert len(pool) == 50
        assert len(view) == 150
        assert oracle.ledger.n_point_queries == 50
        # Removed objects are exactly the labeled ones.
        assert set(np.arange(200)) - set(view.tolist()) == set(pool.rows)

    def test_sample_capped_at_view_size(self, rng):
        dataset = binary_dataset(10, 2, rng=rng)
        oracle = GroundTruthOracle(dataset)
        view, pool = label_samples(oracle, np.arange(10), tau=50, c=2.0, rng=rng)
        assert len(pool) == 10
        assert len(view) == 0

    def test_c_zero_disables_sampling(self, rng):
        dataset = binary_dataset(50, 5, rng=rng)
        oracle = GroundTruthOracle(dataset)
        view, pool = label_samples(oracle, np.arange(50), tau=10, c=0.0, rng=rng)
        assert len(pool) == 0
        assert len(view) == 50
        assert oracle.ledger.total == 0

    def test_labels_match_ground_truth_under_perfect_oracle(self, rng):
        dataset = binary_dataset(100, 30, rng=rng)
        oracle = GroundTruthOracle(dataset)
        _, pool = label_samples(oracle, np.arange(100), tau=20, rng=rng)
        for index, labels in pool.rows.items():
            assert labels == dataset.value_row(index)

    def test_extends_existing_pool(self, rng):
        dataset = binary_dataset(100, 30, rng=rng)
        oracle = GroundTruthOracle(dataset)
        view, pool = label_samples(oracle, np.arange(100), tau=10, rng=rng)
        view, pool2 = label_samples(oracle, view, tau=10, rng=rng, pool=pool)
        assert pool2 is pool
        assert len(pool) == 40

    def test_view_order_preserved(self, rng):
        dataset = binary_dataset(100, 10, rng=rng)
        oracle = GroundTruthOracle(dataset)
        view, _ = label_samples(oracle, np.arange(100), tau=10, rng=rng)
        assert (np.diff(view) > 0).all()

    def test_fractional_budget_rounds_up(self, rng):
        """Regression: int(round(c·tau)) banker's-rounded half-integer
        products down (c=2.5, tau=1 -> 2 samples, not 3); the paper's
        c·tau budget must round up."""
        dataset = binary_dataset(100, 10, rng=rng)
        oracle = GroundTruthOracle(dataset)
        _, pool = label_samples(oracle, np.arange(100), tau=1, c=2.5, rng=rng)
        assert len(pool) == 3
        assert oracle.ledger.n_point_queries == 3

    def test_float_artifacts_do_not_inflate_ceiling(self, rng):
        # 0.1 * 30 == 3.0000000000000004 in binary floating point; the
        # sample size must still be 3, not 4.
        dataset = binary_dataset(100, 10, rng=rng)
        oracle = GroundTruthOracle(dataset)
        _, pool = label_samples(oracle, np.arange(100), tau=30, c=0.1, rng=rng)
        assert len(pool) == 3

    def test_invalid_parameters(self, rng):
        dataset = binary_dataset(10, 2, rng=rng)
        oracle = GroundTruthOracle(dataset)
        with pytest.raises(InvalidParameterError):
            label_samples(oracle, np.arange(10), tau=-1, rng=rng)
        with pytest.raises(InvalidParameterError):
            label_samples(oracle, np.arange(10), tau=5, c=-1.0, rng=rng)
