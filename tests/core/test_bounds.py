"""Unit tests for the theoretical bounds."""

from __future__ import annotations

import pytest

from repro.core.bounds import (
    adversarial_tree_size,
    lower_bound_tasks,
    single_tree_upper_bound,
    upper_bound_tasks,
)
from repro.errors import InvalidParameterError


class TestUpperBound:
    def test_table1_value(self):
        """The paper's Table 1 reports 115 for N=1522, n=tau=50."""
        assert round(upper_bound_tasks(1522, 50, 50)) == 115

    def test_log_base_2_variant(self):
        value = upper_bound_tasks(1522, 50, 50, log_base=2.0)
        assert value == pytest.approx(1522 / 50 + 50 * 5.643856, rel=1e-5)

    def test_monotone_in_tau_and_N(self):
        assert upper_bound_tasks(1000, 50, 60) > upper_bound_tasks(1000, 50, 50)
        assert upper_bound_tasks(2000, 50, 50) > upper_bound_tasks(1000, 50, 50)

    def test_n_equal_one_drops_log_term(self):
        assert upper_bound_tasks(100, 1, 50) == 100.0

    def test_invalid(self):
        with pytest.raises(InvalidParameterError):
            upper_bound_tasks(-1, 50, 50)
        with pytest.raises(InvalidParameterError):
            upper_bound_tasks(100, 0, 50)
        with pytest.raises(InvalidParameterError):
            upper_bound_tasks(100, 50, -1)
        with pytest.raises(InvalidParameterError):
            upper_bound_tasks(100, 50, 50, log_base=1.0)


class TestLowerBound:
    def test_ceiling_division(self):
        assert lower_bound_tasks(100, 50) == 2
        assert lower_bound_tasks(101, 50) == 3
        assert lower_bound_tasks(0, 50) == 0

    def test_lower_bound_below_upper_bound(self):
        for N, n, tau in [(1000, 50, 50), (100, 10, 5), (10**6, 50, 50)]:
            assert lower_bound_tasks(N, n) <= upper_bound_tasks(N, n, tau) + 1


class TestTreeBounds:
    def test_single_tree_bound_tau_zero(self):
        assert single_tree_upper_bound(64, 0) == 1

    def test_single_tree_bound_formula(self):
        # 2*tau - 1 internal skeleton + 2*tau*log2(n) isolation levels.
        assert single_tree_upper_bound(64, 4) == 2 * 4 - 1 + 2 * 4 * 6

    def test_adversarial_size_small_cases(self):
        assert adversarial_tree_size(64, 1) == 1.0
        assert adversarial_tree_size(16, 16) == 31.0  # n <= tau: full tree

    def test_adversarial_size_grows_with_n(self):
        assert adversarial_tree_size(2**16, 64) > adversarial_tree_size(2**10, 64)
