"""Unit tests for Classifier-Coverage (Algorithm 4) and Partition/Label."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.classifier_coverage import (
    classifier_coverage,
    label_positive_set,
    partition_positive_set,
)
from repro.core.group_coverage import group_coverage
from repro.crowd.oracle import GroundTruthOracle
from repro.data.groups import group
from repro.data.synthetic import binary_dataset
from repro.errors import InvalidParameterError

FEMALE = group(gender="female")


def predictions_with(dataset, rng, n_true_positives, n_false_positives):
    """A predicted-positive index set with exact TP/FP composition."""
    members = dataset.positions(FEMALE)
    non_members = dataset.positions(group(gender="male"))
    chosen = [
        rng.choice(members, size=n_true_positives, replace=False),
        rng.choice(non_members, size=n_false_positives, replace=False),
    ]
    predicted = np.concatenate(chosen)
    rng.shuffle(predicted)
    return predicted


class TestPartition:
    def test_clean_set_costs_one_query_per_chunk(self, rng):
        dataset = binary_dataset(500, 200, rng=rng)
        positives = dataset.positions(FEMALE)[:100]
        oracle = GroundTruthOracle(dataset)
        verified, exhausted = partition_positive_set(oracle, FEMALE, positives, n=50)
        assert exhausted
        assert sorted(verified) == sorted(int(i) for i in positives)
        assert oracle.ledger.n_set_queries == 2  # 100/50 chunks, both "no"

    def test_isolates_false_positives(self, rng):
        dataset = binary_dataset(500, 200, rng=rng)
        predicted = predictions_with(dataset, rng, 60, 4)
        oracle = GroundTruthOracle(dataset)
        verified, exhausted = partition_positive_set(oracle, FEMALE, predicted, n=32)
        assert exhausted
        true_members = set(dataset.positions(FEMALE).tolist())
        assert set(verified) == set(int(i) for i in predicted) & true_members

    def test_early_stop(self, rng):
        dataset = binary_dataset(500, 300, rng=rng)
        positives = dataset.positions(FEMALE)[:200]
        oracle = GroundTruthOracle(dataset)
        verified, exhausted = partition_positive_set(
            oracle, FEMALE, positives, n=50, stop_after=50
        )
        assert not exhausted
        assert len(verified) >= 50
        assert oracle.ledger.n_set_queries == 1  # first clean chunk suffices

    def test_all_false_positives(self, rng):
        dataset = binary_dataset(100, 50, rng=rng)
        fakes = dataset.positions(group(gender="male"))[:16]
        oracle = GroundTruthOracle(dataset)
        verified, exhausted = partition_positive_set(oracle, FEMALE, fakes, n=16)
        assert exhausted and verified == []

    def test_invalid_n(self, rng):
        dataset = binary_dataset(10, 5, rng=rng)
        with pytest.raises(InvalidParameterError):
            partition_positive_set(
                GroundTruthOracle(dataset), FEMALE, np.array([0]), n=0
            )


class TestLabel:
    def test_labels_until_stop(self, rng):
        dataset = binary_dataset(300, 150, rng=rng)
        predicted = predictions_with(dataset, rng, 80, 20)
        oracle = GroundTruthOracle(dataset)
        verified, _ = label_positive_set(
            oracle, FEMALE, predicted, stop_after=30
        )
        assert len(verified) == 30
        assert oracle.ledger.n_point_queries <= len(predicted)

    def test_exhausts_when_below_stop(self, rng):
        dataset = binary_dataset(300, 150, rng=rng)
        predicted = predictions_with(dataset, rng, 10, 30)
        oracle = GroundTruthOracle(dataset)
        verified, exhausted = label_positive_set(
            oracle, FEMALE, predicted, stop_after=50
        )
        assert exhausted
        assert len(verified) == 10
        assert oracle.ledger.n_point_queries == 40


class TestClassifierCoverage:
    def test_high_precision_chooses_partition_and_wins(self, rng):
        dataset = binary_dataset(994, 403, rng=rng)
        predicted = predictions_with(dataset, rng, 200, 2)  # 99% precision
        oracle = GroundTruthOracle(dataset)
        result = classifier_coverage(
            oracle, FEMALE, 50, predicted, n=50, rng=rng, dataset_size=len(dataset)
        )
        assert result.strategy == "partition"
        assert result.covered
        baseline = group_coverage(
            GroundTruthOracle(dataset), FEMALE, 50, n=50, dataset_size=len(dataset)
        )
        assert result.tasks.total < baseline.tasks.total

    def test_low_precision_chooses_label(self, rng):
        dataset = binary_dataset(3000, 200, rng=rng)
        predicted = predictions_with(dataset, rng, 90, 85)  # ~51% precision
        result = classifier_coverage(
            GroundTruthOracle(dataset), FEMALE, 50, predicted, n=50, rng=rng,
            dataset_size=len(dataset),
        )
        assert result.strategy == "label"
        assert result.covered

    def test_uncovered_group_falls_back_and_is_exact(self, rng):
        dataset = binary_dataset(3000, 20, rng=rng)
        predicted = predictions_with(dataset, rng, 8, 92)  # 8% precision
        result = classifier_coverage(
            GroundTruthOracle(dataset), FEMALE, 50, predicted, n=50, rng=rng,
            dataset_size=len(dataset),
        )
        assert not result.covered
        assert result.count == 20  # exact: verified + fallback
        assert result.fallback is not None
        assert result.strategy == "label"

    def test_empty_prediction_set_degenerates_to_group_coverage(self, rng):
        dataset = binary_dataset(500, 100, rng=rng)
        result = classifier_coverage(
            GroundTruthOracle(dataset), FEMALE, 50, np.array([], dtype=np.int64),
            n=50, rng=rng, dataset_size=len(dataset),
        )
        assert result.strategy == "none"
        assert result.covered
        assert result.fallback is not None

    def test_perfect_classifier_with_enough_positives_is_cheap(self, rng):
        dataset = binary_dataset(2000, 500, rng=rng)
        predicted = dataset.positions(FEMALE)
        result = classifier_coverage(
            GroundTruthOracle(dataset), FEMALE, 50, predicted, n=50, rng=rng,
            dataset_size=len(dataset),
        )
        assert result.covered
        # 10% sample of 500 = 50 point queries alone certify coverage.
        assert result.tasks.total <= 51

    def test_false_negatives_found_in_complement(self, rng):
        """Classifier misses most members; fallback must find them."""
        dataset = binary_dataset(1000, 100, rng=rng)
        predicted = predictions_with(dataset, rng, 10, 0)
        result = classifier_coverage(
            GroundTruthOracle(dataset), FEMALE, 50, predicted, n=50, rng=rng,
            dataset_size=len(dataset),
        )
        assert result.covered  # 90 members remain outside G
        assert result.fallback is not None

    def test_verdict_correct_across_compositions(self, rng):
        for n_members, tp, fp, tau in [
            (60, 30, 10, 50),   # covered, classifier partial
            (40, 30, 30, 50),   # uncovered
            (55, 0, 40, 50),    # covered, classifier useless
        ]:
            dataset = binary_dataset(800, n_members, rng=rng)
            predicted = predictions_with(dataset, rng, tp, fp)
            result = classifier_coverage(
                GroundTruthOracle(dataset), FEMALE, tau, predicted, n=25,
                rng=rng, dataset_size=len(dataset),
            )
            assert result.covered == (n_members >= tau)

    def test_invalid_parameters(self, rng):
        dataset = binary_dataset(100, 10, rng=rng)
        oracle = GroundTruthOracle(dataset)
        with pytest.raises(InvalidParameterError):
            classifier_coverage(
                oracle, FEMALE, 0, np.array([0]), rng=rng, dataset_size=100
            )
        with pytest.raises(InvalidParameterError):
            classifier_coverage(
                oracle, FEMALE, 5, np.array([0]), sample_fraction=0.0,
                rng=rng, dataset_size=100,
            )
        with pytest.raises(InvalidParameterError):
            classifier_coverage(
                oracle, FEMALE, 5, np.array([0]), fp_threshold=1.5,
                rng=rng, dataset_size=100,
            )

    def test_view_indices_are_validated(self, rng):
        """PR-1 view validation extends to classifier_coverage: negative
        or out-of-range indices raise instead of wrapping silently."""
        dataset = binary_dataset(100, 10, rng=rng)
        oracle = GroundTruthOracle(dataset)
        with pytest.raises(InvalidParameterError, match="negative"):
            classifier_coverage(
                oracle, FEMALE, 5, np.array([0]),
                rng=rng, view=np.array([-3, 1]),
            )
        with pytest.raises(InvalidParameterError, match="out of range"):
            classifier_coverage(
                oracle, FEMALE, 5, np.array([0]),
                rng=rng, view=np.array([1, 100]), dataset_size=100,
            )

    def test_predicted_positive_indices_are_validated(self, rng):
        dataset = binary_dataset(100, 10, rng=rng)
        oracle = GroundTruthOracle(dataset)
        with pytest.raises(InvalidParameterError, match="negative"):
            classifier_coverage(
                oracle, FEMALE, 5, np.array([-1]), rng=rng, dataset_size=100
            )
        with pytest.raises(InvalidParameterError, match="out of range"):
            classifier_coverage(
                oracle, FEMALE, 5, np.array([250]), rng=rng, dataset_size=100
            )
