"""Unit tests for coverage resolution (acquisition planning + member search)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.multiple_coverage import multiple_coverage
from repro.core.resolution import (
    acquisition_plan,
    find_members,
    resolve_coverage,
)
from repro.crowd.oracle import GroundTruthOracle
from repro.data.groups import Group, group
from repro.data.synthetic import binary_dataset, single_attribute_dataset
from repro.errors import InvalidParameterError

FEMALE = group(gender="female")


class TestFindMembers:
    def test_finds_exactly_k_members(self, rng):
        pool = binary_dataset(2_000, 100, rng=rng)
        found, usage = find_members(
            GroundTruthOracle(pool), FEMALE, 10, pool_size=len(pool),
            strategy="search",
        )
        assert len(found) == 10
        assert all(pool.matches(i, FEMALE) for i in found)
        assert usage.n_set_queries > 0 and usage.n_point_queries == 0

    def test_auto_picks_scan_for_dense_groups(self, rng):
        pool = binary_dataset(2_000, 1_000, rng=rng)  # 50% density
        found, usage = find_members(
            GroundTruthOracle(pool), FEMALE, 50, pool_size=len(pool), rng=rng
        )
        assert len(found) == 50
        assert all(pool.matches(i, FEMALE) for i in found)
        # Scan: only point queries after the sample; ~2 per member found.
        assert usage.n_set_queries == 0
        assert usage.n_point_queries < 200

    def test_auto_picks_search_for_rare_groups(self, rng):
        pool = binary_dataset(5_000, 30, rng=rng)  # 0.6% density
        found, usage = find_members(
            GroundTruthOracle(pool), FEMALE, 10, pool_size=len(pool), rng=rng
        )
        assert len(found) == 10
        # Search: the density sample costs 20 points, the rest are sets.
        assert usage.n_point_queries == 20
        assert usage.n_set_queries > 0

    def test_auto_counts_sampled_members_toward_k(self, rng):
        pool = binary_dataset(100, 100, rng=rng)  # everyone matches
        found, usage = find_members(
            GroundTruthOracle(pool), FEMALE, 5, pool_size=len(pool), rng=rng
        )
        assert len(found) == 5
        assert usage.total <= 20  # the sample alone satisfied k

    def test_cheaper_than_point_labeling(self, rng):
        """Locating k rare members by d&c must beat scanning the pool."""
        pool = binary_dataset(5_000, 25, rng=rng)
        found, usage = find_members(
            GroundTruthOracle(pool), FEMALE, 20, pool_size=len(pool)
        )
        assert len(found) == 20
        # Point labeling would need ~ k * N/f ≈ 4000 queries in expectation.
        assert usage.total < 1_000

    def test_pool_runs_dry(self, rng):
        pool = binary_dataset(500, 3, rng=rng)
        found, _ = find_members(
            GroundTruthOracle(pool), FEMALE, 10, pool_size=len(pool)
        )
        assert sorted(found) == sorted(pool.positions(FEMALE).tolist())

    def test_k_zero_costs_nothing(self, rng):
        pool = binary_dataset(100, 10, rng=rng)
        found, usage = find_members(
            GroundTruthOracle(pool), FEMALE, 0, pool_size=len(pool)
        )
        assert found == [] and usage.total == 0

    def test_view_restriction(self):
        pool = binary_dataset(100, 50, placement="front")
        found, _ = find_members(
            GroundTruthOracle(pool), FEMALE, 5, view=np.arange(50, 100)
        )
        assert found == []  # back half holds no members

    def test_invalid_parameters(self, rng):
        pool = binary_dataset(10, 2, rng=rng)
        oracle = GroundTruthOracle(pool)
        with pytest.raises(InvalidParameterError):
            find_members(oracle, FEMALE, -1, pool_size=10)
        with pytest.raises(InvalidParameterError):
            find_members(oracle, FEMALE, 1, pool_size=10, n=0)
        with pytest.raises(InvalidParameterError):
            find_members(oracle, FEMALE, 1)
        with pytest.raises(InvalidParameterError):
            find_members(oracle, FEMALE, 1, pool_size=10, strategy="teleport")


class TestAcquisitionPlan:
    def _report(self, counts, tau=50, seed=3):
        rng = np.random.default_rng(seed)
        dataset = single_attribute_dataset(counts, attribute="race", rng=rng)
        return multiple_coverage(
            GroundTruthOracle(dataset),
            [Group({"race": v}) for v in counts],
            tau,
            rng=rng,
            dataset_size=len(dataset),
            attribute_supergroup_members=True,
        )

    def test_deficits_from_report(self):
        report = self._report({"white": 2_000, "black": 30, "asian": 200})
        plan = acquisition_plan(report, tau=50)
        assert plan.deficits == {group(race="black"): 20}
        assert plan.total_needed == 20

    def test_empty_plan_when_all_covered(self):
        report = self._report({"white": 500, "black": 400})
        plan = acquisition_plan(report, tau=50)
        assert plan.deficits == {}
        assert "nothing to acquire" in plan.describe()

    def test_invalid_tau(self):
        report = self._report({"white": 500, "black": 400})
        with pytest.raises(InvalidParameterError):
            acquisition_plan(report, tau=0)


class TestResolveCoverage:
    def test_end_to_end_resolution(self):
        """Detect a gap, buy the missing samples from a pool, verify the
        combined dataset is covered."""
        rng = np.random.default_rng(11)
        audited = single_attribute_dataset(
            {"white": 3_000, "black": 35, "asian": 12}, attribute="race", rng=rng
        )
        groups = [Group({"race": v}) for v in ("white", "black", "asian")]
        report = multiple_coverage(
            GroundTruthOracle(audited), groups, 50, rng=rng,
            dataset_size=len(audited), attribute_supergroup_members=True,
        )
        plan = acquisition_plan(report, tau=50)
        assert plan.deficits[group(race="black")] == 15
        assert plan.deficits[group(race="asian")] == 38

        pool = single_attribute_dataset(
            {"white": 500, "black": 300, "asian": 300}, attribute="race", rng=rng
        )
        acquired, usage = resolve_coverage(
            GroundTruthOracle(pool), plan, pool_size=len(pool)
        )
        assert len(acquired[group(race="black")]) == 15
        assert len(acquired[group(race="asian")]) == 38
        assert usage.total > 0

        # Stitch the acquisitions onto the audited dataset: now covered.
        additions = pool.subset(
            [i for indices in acquired.values() for i in indices]
        )
        combined = audited.concatenated(additions)
        for g in groups:
            assert combined.count(g) >= 50

    def test_acquired_sets_are_disjoint(self):
        rng = np.random.default_rng(13)
        audited = single_attribute_dataset(
            {"white": 1_000, "black": 10, "asian": 10}, attribute="race", rng=rng
        )
        groups = [Group({"race": v}) for v in ("white", "black", "asian")]
        report = multiple_coverage(
            GroundTruthOracle(audited), groups, 50, rng=rng,
            dataset_size=len(audited), attribute_supergroup_members=True,
        )
        plan = acquisition_plan(report, tau=50)
        pool = single_attribute_dataset(
            {"white": 100, "black": 100, "asian": 100}, attribute="race", rng=rng
        )
        acquired, _ = resolve_coverage(GroundTruthOracle(pool), plan, pool_size=len(pool))
        all_indices = [i for indices in acquired.values() for i in indices]
        assert len(all_indices) == len(set(all_indices))
