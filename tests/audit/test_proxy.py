"""The recording oracle proxy: delegation semantics and budget guards."""

from __future__ import annotations

import numpy as np
import pytest

from repro.audit import AuditSession
from repro.audit.proxy import RecordingOracleProxy
from repro.crowd.oracle import GroundTruthOracle
from repro.data.synthetic import binary_dataset
from repro.errors import InvalidParameterError


@pytest.fixture(scope="module")
def dataset():
    return binary_dataset(200, 10, rng=np.random.default_rng(2))


class TestGetattrDelegation:
    def test_plain_attributes_delegate(self, dataset):
        oracle = GroundTruthOracle(dataset)
        proxy = RecordingOracleProxy(oracle)
        assert proxy.dataset is oracle.dataset
        assert proxy.membership_index is oracle.membership_index

    def test_truly_missing_attribute_stays_an_attribute_error(self, dataset):
        proxy = RecordingOracleProxy(GroundTruthOracle(dataset))
        with pytest.raises(AttributeError):
            proxy.no_such_attribute
        assert getattr(proxy, "no_such_attribute", None) is None

    def test_property_raising_attribute_error_is_not_masked(self, dataset):
        """An AttributeError raised *inside* an inner-oracle property must
        surface as a real error (chained), not masquerade as a missing
        attribute — hasattr()/getattr(default) would silently hide the
        bug otherwise."""

        class BuggyOracle(GroundTruthOracle):
            @property
            def flaky_metadata(self):
                raise AttributeError("broken internals: self._meta missing")

        proxy = RecordingOracleProxy(BuggyOracle(dataset))
        with pytest.raises(RuntimeError) as excinfo:
            proxy.flaky_metadata
        assert "flaky_metadata" in str(excinfo.value)
        assert isinstance(excinfo.value.__cause__, AttributeError)
        assert "broken internals" in str(excinfo.value.__cause__)
        # And crucially: the existence check does not lie anymore.
        with pytest.raises(RuntimeError):
            hasattr(proxy, "flaky_metadata")

    def test_session_surfaces_buggy_inner_properties(self, dataset):
        class BuggyOracle(GroundTruthOracle):
            @property
            def platform(self):
                raise AttributeError("platform wiring broke")

        session = AuditSession(BuggyOracle(dataset))
        with pytest.raises(RuntimeError):
            session._proxy.platform
        session.close()


class TestBudgetValidation:
    @pytest.mark.parametrize("budget", [0, -1, -100])
    def test_session_rejects_non_positive_task_budget(self, dataset, budget):
        with pytest.raises(InvalidParameterError):
            AuditSession(GroundTruthOracle(dataset), task_budget=budget)

    @pytest.mark.parametrize("budget", [0, -5])
    def test_oracle_rejects_non_positive_budget(self, dataset, budget):
        with pytest.raises(InvalidParameterError):
            GroundTruthOracle(dataset, budget=budget)

    def test_unbounded_budgets_still_allowed(self, dataset):
        session = AuditSession(GroundTruthOracle(dataset), task_budget=None)
        session.close()
        GroundTruthOracle(dataset, budget=1)  # the smallest legal ceiling
