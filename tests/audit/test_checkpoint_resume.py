"""Checkpoint/resume: pay for every answer once, reach the same verdict."""

from __future__ import annotations

import numpy as np
import pytest

from repro.audit import (
    AuditSession,
    GroupAuditSpec,
    MultipleAuditSpec,
)
from repro.crowd.oracle import GroundTruthOracle
from repro.data.groups import group
from repro.data.synthetic import binary_dataset, single_attribute_dataset
from repro.errors import BudgetExceededError, InvalidParameterError

FEMALE = group(gender="female")


class RecordingOracle(GroundTruthOracle):
    """Ground truth plus a log of every set/point question actually asked."""

    def __init__(self, dataset, **kwargs):
        super().__init__(dataset, **kwargs)
        self.set_keys: list = []
        self.point_indices: list[int] = []

    def _answer_set(self, indices, predicate):
        self.set_keys.append(
            (predicate, np.ascontiguousarray(indices, dtype=np.int64).tobytes())
        )
        return super()._answer_set(indices, predicate)

    def _answer_set_batch(self, queries):
        self.set_keys.extend(
            (predicate, indices.tobytes()) for indices, predicate in queries
        )
        return super()._answer_set_batch(queries)

    def _answer_point(self, index):
        self.point_indices.append(index)
        return super()._answer_point(index)

    def _answer_point_batch(self, indices):
        self.point_indices.extend(indices)
        return [super(RecordingOracle, self)._answer_point(i) for i in indices]


@pytest.fixture
def dataset():
    return binary_dataset(4000, 35, rng=np.random.default_rng(5))


@pytest.mark.parametrize("engine", [None, True], ids=["sequential", "engine"])
def test_resume_reaches_same_verdict_without_reasking(dataset, engine):
    spec = GroupAuditSpec(predicate=FEMALE, tau=50)

    reference_oracle = GroundTruthOracle(dataset)
    with AuditSession(reference_oracle, engine=engine) as session:
        reference = session.run(spec)

    oracle = RecordingOracle(dataset)
    session = AuditSession(oracle, engine=engine, task_budget=60)
    with pytest.raises(BudgetExceededError):
        with session:
            session.run(spec)
    assert session.pending_specs == (spec,)
    paid_before = oracle.ledger.total
    assert 0 < paid_before <= 60
    first_phase = set(oracle.set_keys)
    checkpoint = session.checkpoint()

    resumed = AuditSession.resume(checkpoint, oracle)
    assert resumed.pending_specs == (spec,)
    mark = len(oracle.set_keys)
    with resumed:
        report = resumed.run_pending()
    second_phase = set(oracle.set_keys[mark:])

    # Not a single query the first phase paid for was asked again.
    assert not (first_phase & second_phase)
    # Same verdict and count as the uninterrupted reference, and the
    # two phases together paid exactly the uninterrupted bill.
    assert report.result.covered == reference.result.covered
    assert report.result.count == reference.result.count
    assert oracle.ledger.total == reference.result.tasks.total


def test_resume_restores_budget_semantics(dataset):
    spec = GroupAuditSpec(predicate=FEMALE, tau=50)
    oracle = GroundTruthOracle(dataset, budget=40)
    session = AuditSession(oracle, engine=True)
    with pytest.raises(BudgetExceededError):
        with session:
            session.run(spec)
    checkpoint = session.checkpoint()

    # Resume with a raised budget on the same oracle.
    resumed = AuditSession.resume(checkpoint, oracle, task_budget=10_000)
    with resumed:
        report = resumed.run_pending()
    assert report.result.covered is False
    # close() restored the oracle's own (exhausted) budget.
    assert oracle.ledger.budget == 40


def test_checkpoint_round_trips_rng_dependent_specs():
    """With seed= the sampling phase re-draws identically on resume, so
    point queries replay from the checkpoint instead of re-charging."""
    counts = {"white": 900, "black": 60, "asian": 45}
    dataset = single_attribute_dataset(counts, rng=np.random.default_rng(9))
    groups = tuple(group(race=value) for value in counts)
    spec = MultipleAuditSpec(groups=groups, tau=40)

    reference_oracle = GroundTruthOracle(dataset)
    with AuditSession(reference_oracle, engine=True, seed=13) as session:
        reference = session.run(spec)

    oracle = RecordingOracle(dataset)
    session = AuditSession(oracle, engine=True, seed=13, task_budget=90)
    with pytest.raises(BudgetExceededError):
        with session:
            session.run(spec)
    first_sets = set(oracle.set_keys)
    first_points = set(oracle.point_indices)
    checkpoint = session.checkpoint()

    resumed = AuditSession.resume(checkpoint, oracle)
    set_mark, point_mark = len(oracle.set_keys), len(oracle.point_indices)
    with resumed:
        report = resumed.run_pending()

    assert not (first_sets & set(oracle.set_keys[set_mark:]))
    assert not (first_points & set(oracle.point_indices[point_mark:]))
    for ours, theirs in zip(report.result.entries, reference.result.entries):
        assert (ours.covered, ours.count) == (theirs.covered, theirs.count)
    assert oracle.ledger.total == reference.result.tasks.total


def test_resume_restores_rng_stream_position():
    """A session that completed an rng-consuming run *before* the
    interrupted one must resume from the interrupted spec's stream
    position, not from the seed — otherwise the resumed sampling phase
    re-draws the earlier spec's samples and re-charges the crowd."""
    counts = {"white": 900, "black": 60, "asian": 45, "hispanic": 30}
    dataset = single_attribute_dataset(counts, rng=np.random.default_rng(9))
    first = MultipleAuditSpec(groups=(group(race="white"), group(race="black")), tau=40)
    second = MultipleAuditSpec(groups=(group(race="asian"), group(race="hispanic")), tau=40)

    reference_oracle = GroundTruthOracle(dataset)
    with AuditSession(reference_oracle, engine=True, seed=13) as session:
        session.run(first)
        reference = session.run(second)

    oracle = RecordingOracle(dataset)
    session = AuditSession(oracle, engine=True, seed=13)
    with session:
        session.run(first)  # advances the rng stream past `first`
    session = AuditSession(oracle, engine=True, rng=session.rng, task_budget=oracle.ledger.total + 90)
    with pytest.raises(BudgetExceededError):
        with session:
            session.run(second)
    first_points = set(oracle.point_indices)
    checkpoint = session.checkpoint()

    resumed = AuditSession.resume(checkpoint, oracle)
    point_mark = len(oracle.point_indices)
    with resumed:
        report = resumed.run_pending()

    # No point query from either earlier phase was re-asked, and the
    # verdicts match the uninterrupted two-spec reference exactly.
    assert not (first_points & set(oracle.point_indices[point_mark:]))
    for ours, theirs in zip(report.result.entries, reference.result.entries):
        assert (ours.covered, ours.count) == (theirs.covered, theirs.count)
    assert oracle.ledger.total == reference_oracle.ledger.total


def test_failed_validation_does_not_poison_pending(dataset):
    """A spec that dies on parameter validation is not resumable work;
    it must not linger in pending_specs and break later checkpoints."""
    from repro.errors import InvalidParameterError

    with AuditSession(GroundTruthOracle(dataset), engine=True) as session:
        bad = GroupAuditSpec(predicate=FEMALE, tau=5, view=(0, len(dataset) + 7))
        with pytest.raises(InvalidParameterError):
            session.run(bad)
        assert session.pending_specs == ()
        with pytest.raises(InvalidParameterError):
            session.run_many([bad, GroupAuditSpec(predicate=FEMALE, tau=5)])
        assert session.pending_specs == ()
        checkpoint = session.checkpoint()
    resumed = AuditSession.resume(checkpoint, GroundTruthOracle(dataset))
    assert resumed.pending_specs == ()


def test_checkpoint_survives_json_and_rejects_unknown_version(dataset):
    import json

    oracle = GroundTruthOracle(dataset)
    session = AuditSession(oracle, engine=True, task_budget=40)
    with pytest.raises(BudgetExceededError):
        with session:
            session.run(GroupAuditSpec(predicate=FEMALE, tau=50))
    payload = json.loads(session.checkpoint())
    assert payload["version"] == 3
    assert payload["pending"]
    assert payload["set_answers"]
    # Contiguous-run answers serialize as compact endpoints, not
    # exhaustive index lists.
    assert any("run" in entry for entry in payload["set_answers"])

    payload["version"] = 99
    with pytest.raises(InvalidParameterError):
        AuditSession.resume(json.dumps(payload), oracle)


def test_version1_checkpoints_remain_readable(dataset):
    """Old checkpoints spell every run out as an index list; resuming
    one must intern those lists back into run keys and replay them."""
    import json

    oracle = RecordingOracle(dataset)
    session = AuditSession(oracle, engine=True, task_budget=40)
    with pytest.raises(BudgetExceededError):
        with session:
            session.run(GroupAuditSpec(predicate=FEMALE, tau=50))
    payload = json.loads(session.checkpoint())

    # Downgrade to the version-1 shape: exhaustive index lists only.
    payload["version"] = 1
    for entry in payload["set_answers"]:
        run = entry.pop("run", None)
        if run is not None:
            entry["indices"] = list(range(run[0], run[1]))

    resumed = AuditSession.resume(json.dumps(payload), oracle)
    mark = len(oracle.set_keys)
    with resumed:
        report = resumed.run_pending()
    replayed = set(oracle.set_keys[:mark])
    asked_after = set(oracle.set_keys[mark:])
    assert not (asked_after & replayed)  # nothing paid for twice
    (entry,) = report.entries
    reference = AuditSession(GroundTruthOracle(dataset), engine=True)
    with reference:
        expected = reference.run(GroupAuditSpec(predicate=FEMALE, tau=50))
    assert entry.result.covered == expected.entries[0].result.covered
    assert entry.result.count == expected.entries[0].result.count


def test_run_pending_requires_pending_specs(dataset):
    with AuditSession(GroundTruthOracle(dataset)) as session:
        with pytest.raises(InvalidParameterError):
            session.run_pending()


class TestServiceJobStoreResume:
    """The service-level analogue of session checkpointing: kill an
    AuditService mid-job, resume from its JobStore, and pay for nothing
    twice."""

    def _specs(self):
        return [
            GroupAuditSpec(predicate=group(gender="female"), tau=50),
            GroupAuditSpec(predicate=group(gender="male"), tau=5000),
        ]

    def test_killed_service_resumes_with_zero_reasked_queries(
        self, dataset, tmp_path
    ):
        from repro.service import AuditService, DirectoryJobStore, JobStatus

        reference_oracle = GroundTruthOracle(dataset)
        with AuditSession(reference_oracle, engine=True) as session:
            reference = session.run_many(self._specs())

        store = DirectoryJobStore(tmp_path / "killed-service")
        oracle = RecordingOracle(dataset)
        service = AuditService(oracle, max_active_jobs=2, job_store=store)
        for spec in self._specs():
            service.submit(spec)
        for _ in range(3):  # partial progress only
            service.step()
        service.checkpoint()
        first_phase = set(oracle.set_keys)
        assert first_phase  # the kill really is mid-job
        assert any(
            handle.status == JobStatus.RUNNING for handle in service.jobs()
        )
        del service  # the crash: no close(), no further checkpoints

        # The store directory is all that survives.
        revived = AuditService.resume(store, oracle)
        mark = len(oracle.set_keys)
        with revived:
            revived.drain()
            reports = [handle.result() for handle in revived.jobs()]
        second_phase = set(oracle.set_keys[mark:])

        # Not a single query the first phase paid for was asked again.
        assert not (first_phase & second_phase)
        # Identical verdicts, and the two phases together paid exactly
        # the uninterrupted bill.
        for report, entry in zip(reports, reference.entries):
            assert report.result.covered == entry.result.covered
            assert report.result.count == entry.result.count
        assert oracle.ledger.total == reference_oracle.ledger.total

    def test_resume_preserves_rng_dependent_jobs(self, tmp_path):
        from repro.service import AuditService, InMemoryJobStore

        counts = {"white": 900, "black": 60, "asian": 45}
        dataset = single_attribute_dataset(counts, rng=np.random.default_rng(9))
        spec = MultipleAuditSpec(
            groups=tuple(group(race=value) for value in counts), tau=40
        )

        reference_oracle = GroundTruthOracle(dataset)
        with AuditSession(reference_oracle, engine=True, seed=13) as session:
            reference = session.run(spec)

        # Kill the service before the job ever activates: the recorded
        # per-job seed must survive into the revived service.
        store = InMemoryJobStore()
        oracle = RecordingOracle(dataset)
        service = AuditService(oracle, job_store=store)
        service.submit(spec, seed=13)
        service.checkpoint()
        del service

        revived = AuditService.resume(store, oracle)
        with revived:
            revived.drain()
            (report,) = [handle.result() for handle in revived.jobs()]
        for ours, theirs in zip(report.result.entries, reference.result.entries):
            assert (ours.covered, ours.count) == (theirs.covered, theirs.count)
        assert oracle.ledger.total == reference_oracle.ledger.total
