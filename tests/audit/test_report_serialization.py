"""JSON round-trips for every result dataclass in `core/results.py`.

Each type is exercised twice: synthetically (hand-built instances hit
every field, including the odd corners) and end-to-end (real algorithm
outputs embedded in an AuditReport). Round trips must reconstruct
**equal** objects — structure, predicates, counters, floats, all of it.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.audit import (
    AuditEntry,
    AuditReport,
    AuditSession,
    ClassifierAuditSpec,
    GroupAuditSpec,
    IntersectionalAuditSpec,
    result_from_dict,
    result_to_dict,
)
from repro.audit.serialization import (
    engine_stats_from_dict,
    engine_stats_to_dict,
    predicate_from_dict,
    predicate_to_dict,
    task_usage_from_dict,
    task_usage_to_dict,
)
from repro.core.results import (
    ClassifierCoverageResult,
    GroupCoverageResult,
    GroupEntry,
    IntersectionalCoverageReport,
    MultipleCoverageReport,
    TaskUsage,
)
from repro.crowd.oracle import GroundTruthOracle
from repro.data.groups import Negation, SuperGroup, group
from repro.data.schema import Schema
from repro.data.synthetic import intersectional_dataset
from repro.engine.stats import EngineStats
from repro.errors import InvalidParameterError
from repro.patterns.combiner import LeafCoverage, combine_leaf_coverage
from repro.patterns.graph import PatternGraph

FEMALE = group(gender="female")
MALE = group(gender="male")


def json_round_trip(result):
    return result_from_dict(json.loads(json.dumps(result_to_dict(result))))


class TestScalarCodecs:
    def test_task_usage(self):
        usage = TaskUsage(n_set_queries=3, n_point_queries=5, n_rounds=2)
        assert task_usage_from_dict(task_usage_to_dict(usage)) == usage

    def test_engine_stats(self):
        stats = EngineStats(4, 3, 100, 7, 12, 88)
        assert engine_stats_from_dict(engine_stats_to_dict(stats)) == stats
        assert engine_stats_to_dict(None) is None
        assert engine_stats_from_dict(None) is None

    @pytest.mark.parametrize(
        "predicate",
        [
            FEMALE,
            group(gender="female", race="asian"),
            SuperGroup([FEMALE, MALE]),
            Negation(FEMALE),
            Negation(SuperGroup([FEMALE, MALE])),
        ],
        ids=lambda p: p.describe(),
    )
    def test_predicates(self, predicate):
        rebuilt = predicate_from_dict(
            json.loads(json.dumps(predicate_to_dict(predicate)))
        )
        assert rebuilt == predicate
        assert hash(rebuilt) == hash(predicate)


class TestSyntheticResults:
    def test_group_coverage_result(self):
        result = GroupCoverageResult(
            predicate=SuperGroup([FEMALE, MALE]),
            covered=True,
            count=12,
            tau=12,
            tasks=TaskUsage(40, 2, 11),
            discovered_indices=(9, 4, 400),
            engine_stats=EngineStats(3, 2, 40, 1, 5, 35),
        )
        assert json_round_trip(result) == result

    def test_multiple_coverage_report(self):
        sg = SuperGroup([FEMALE, MALE])
        report = MultipleCoverageReport(
            entries=(
                GroupEntry(
                    group=FEMALE,
                    covered=False,
                    count=3,
                    count_is_exact=True,
                    via_supergroup=sg,
                ),
                GroupEntry(
                    group=MALE, covered=True, count=50, count_is_exact=False
                ),
            ),
            super_groups=(sg,),
            sampled_counts={FEMALE: 1, MALE: 42},
            tasks=TaskUsage(10, 100, 7),
            engine_stats=None,
        )
        assert json_round_trip(report) == report

    def test_classifier_coverage_result_with_fallback(self):
        fallback = GroupCoverageResult(
            predicate=FEMALE,
            covered=False,
            count=7,
            tau=9,
            tasks=TaskUsage(30, 0, 30),
            discovered_indices=(1, 2),
        )
        result = ClassifierCoverageResult(
            group=FEMALE,
            covered=False,
            count=48,
            tau=50,
            strategy="partition",
            precision_estimate=0.8333333333333334,
            verified_count=41,
            tasks=TaskUsage(44, 12, 50),
            fallback=fallback,
            sample_size=12,
        )
        rebuilt = json_round_trip(result)
        assert rebuilt == result
        # Floats survive exactly (json uses repr round-tripping).
        assert rebuilt.precision_estimate == result.precision_estimate

    def test_intersectional_coverage_report(self):
        schema = Schema.from_dict(
            {"gender": ["male", "female"], "race": ["white", "black"]}
        )
        graph = PatternGraph(schema)
        leaf_results = {}
        for leaf in graph.leaves():
            covered = leaf.matches_row({"gender": "male", "race": "white"})
            leaf_results[leaf] = LeafCoverage(
                covered=covered, count=30 if covered else 4
            )
        pattern_report = combine_leaf_coverage(graph, leaf_results, tau=30)
        leaf_report = MultipleCoverageReport(
            entries=(
                GroupEntry(
                    group=group(gender="male", race="white"),
                    covered=True,
                    count=30,
                    count_is_exact=False,
                ),
            ),
            super_groups=(SuperGroup([group(gender="male", race="white")]),),
            sampled_counts={group(gender="male", race="white"): 10},
            tasks=TaskUsage(5, 60, 3),
            engine_stats=EngineStats(1, 1, 5, 0, 0, 5),
        )
        report = IntersectionalCoverageReport(
            leaf_report=leaf_report,
            pattern_report=pattern_report,
            tasks=TaskUsage(5, 60, 3),
            engine_stats=EngineStats(1, 1, 5, 0, 0, 5),
        )
        rebuilt = json_round_trip(report)
        assert rebuilt == report
        assert rebuilt.mups == report.mups

    def test_unknown_kinds_rejected(self):
        with pytest.raises(InvalidParameterError):
            result_to_dict(object())
        with pytest.raises(InvalidParameterError):
            result_from_dict({"kind": "mystery"})


class TestEndToEnd:
    """Real algorithm outputs, through the AuditReport envelope."""

    @pytest.fixture(scope="class")
    def dataset(self):
        schema = Schema.from_dict(
            {"gender": ["male", "female"], "race": ["white", "black"]}
        )
        return schema, intersectional_dataset(
            schema,
            {
                ("male", "white"): 600,
                ("female", "white"): 90,
                ("male", "black"): 70,
                ("female", "black"): 6,
            },
            rng=np.random.default_rng(21),
        )

    def test_intersectional_report_round_trips(self, dataset):
        schema, ds = dataset
        with AuditSession(GroundTruthOracle(ds), engine=True, seed=5) as session:
            report = session.run(IntersectionalAuditSpec(schema=schema, tau=40))
        rebuilt = AuditReport.from_json(report.to_json())
        assert rebuilt == report
        assert rebuilt.result.mups == report.result.mups

    def test_classifier_report_round_trips(self, dataset):
        schema, ds = dataset
        predicted = np.flatnonzero(ds.mask(FEMALE))[:80]
        with AuditSession(GroundTruthOracle(ds), seed=5) as session:
            report = session.run(
                ClassifierAuditSpec(
                    group=FEMALE, tau=60, predicted_positive=predicted
                )
            )
        assert AuditReport.from_json(report.to_json()) == report

    def test_audit_entry_round_trips(self, dataset):
        schema, ds = dataset
        with AuditSession(GroundTruthOracle(ds)) as session:
            report = session.run(GroupAuditSpec(predicate=FEMALE, tau=10))
        entry = report.entries[0]
        assert AuditEntry.from_dict(entry.to_dict()) == entry

    def test_report_version_is_checked(self, dataset):
        schema, ds = dataset
        with AuditSession(GroundTruthOracle(ds)) as session:
            report = session.run(GroupAuditSpec(predicate=FEMALE, tau=10))
        payload = report.to_dict()
        payload["version"] = 0
        with pytest.raises(InvalidParameterError):
            AuditReport.from_dict(payload)
