"""Randomized equivalence: `session.run(spec)` == the legacy function.

The acceptance bar of the AuditSession redesign: for seeded workloads a
sequential session produces **bit-identical** verdicts, counts, and task
usage to the legacy function call (they share one execution path, but
these tests would catch any drift), engine sessions preserve verdicts
and counts, and every report envelope survives a JSON round trip
exactly.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.audit import (
    AuditReport,
    AuditSession,
    BaseAuditSpec,
    ClassifierAuditSpec,
    GroupAuditSpec,
    IntersectionalAuditSpec,
    MultipleAuditSpec,
)
from repro.core.base_coverage import base_coverage
from repro.core.classifier_coverage import classifier_coverage
from repro.core.group_coverage import group_coverage
from repro.core.intersectional_coverage import intersectional_coverage
from repro.core.multiple_coverage import multiple_coverage
from repro.crowd.oracle import FlakyOracle, GroundTruthOracle
from repro.data.groups import group
from repro.data.schema import Schema
from repro.data.synthetic import intersectional_dataset, single_attribute_dataset

FEMALE = group(gender="female")

SEEDS = [3, 11, 29]


def make_dataset(seed: int):
    rng = np.random.default_rng(seed)
    counts = {
        "white": int(rng.integers(500, 1200)),
        "black": int(rng.integers(10, 120)),
        "asian": int(rng.integers(10, 120)),
        "hispanic": int(rng.integers(0, 60)),
    }
    return counts, single_attribute_dataset(counts, attribute="race", rng=rng)


def make_gender_dataset(seed: int):
    rng = np.random.default_rng(seed)
    schema = Schema.from_dict({"gender": ["male", "female"]})
    n_female = int(rng.integers(0, 120))
    return intersectional_dataset(
        schema,
        {("male",): 900, ("female",): n_female},
        rng=rng,
    )


@pytest.mark.parametrize("seed", SEEDS)
class TestSequentialBitEquivalence:
    """Sequential sessions must match the legacy calls exactly — verdict,
    count, discovered members, and TaskUsage down to the round counter."""

    def test_group_coverage(self, seed):
        counts, dataset = make_dataset(seed)
        target = group(race="black")
        legacy = group_coverage(
            GroundTruthOracle(dataset), target, 60, n=40, dataset_size=len(dataset)
        )
        with AuditSession(GroundTruthOracle(dataset)) as session:
            report = session.run(GroupAuditSpec(predicate=target, tau=60, n=40))
        assert report.result == legacy
        assert report.tasks == legacy.tasks

    def test_group_coverage_noisy_oracle(self, seed):
        counts, dataset = make_dataset(seed)
        target = group(race="asian")
        legacy = group_coverage(
            FlakyOracle(dataset, np.random.default_rng(seed), set_error_rate=0.05),
            target,
            40,
            dataset_size=len(dataset),
        )
        oracle = FlakyOracle(
            dataset, np.random.default_rng(seed), set_error_rate=0.05
        )
        with AuditSession(oracle) as session:
            report = session.run(GroupAuditSpec(predicate=target, tau=40))
        assert report.result == legacy

    def test_base_coverage(self, seed):
        counts, dataset = make_dataset(seed)
        target = group(race="hispanic")
        legacy = base_coverage(
            GroundTruthOracle(dataset), target, 20, dataset_size=len(dataset)
        )
        with AuditSession(GroundTruthOracle(dataset)) as session:
            report = session.run(BaseAuditSpec(predicate=target, tau=20))
        assert report.result == legacy
        assert report.tasks == legacy.tasks

    def test_multiple_coverage(self, seed):
        counts, dataset = make_dataset(seed)
        groups = [group(race=value) for value in counts]
        legacy = multiple_coverage(
            GroundTruthOracle(dataset),
            groups,
            50,
            rng=np.random.default_rng(seed),
            dataset_size=len(dataset),
        )
        with AuditSession(GroundTruthOracle(dataset), seed=seed) as session:
            report = session.run(MultipleAuditSpec(groups=tuple(groups), tau=50))
        assert report.result == legacy
        assert report.tasks == legacy.tasks

    def test_intersectional_coverage(self, seed):
        rng = np.random.default_rng(seed)
        schema = Schema.from_dict(
            {"gender": ["male", "female"], "race": ["white", "black"]}
        )
        dataset = intersectional_dataset(
            schema,
            {
                ("male", "white"): 500,
                ("female", "white"): int(rng.integers(5, 150)),
                ("male", "black"): int(rng.integers(5, 150)),
                ("female", "black"): int(rng.integers(0, 30)),
            },
            rng=rng,
        )
        legacy = intersectional_coverage(
            GroundTruthOracle(dataset),
            schema,
            40,
            rng=np.random.default_rng(seed + 1),
            dataset_size=len(dataset),
        )
        with AuditSession(GroundTruthOracle(dataset), seed=seed + 1) as session:
            report = session.run(IntersectionalAuditSpec(schema=schema, tau=40))
        assert report.result == legacy
        assert report.tasks == legacy.tasks

    def test_classifier_coverage(self, seed):
        dataset = make_gender_dataset(seed)
        truth = dataset.mask(FEMALE)
        rng = np.random.default_rng(seed)
        noisy = truth ^ (rng.random(len(dataset)) < 0.05)
        predicted = np.flatnonzero(noisy)
        legacy = classifier_coverage(
            GroundTruthOracle(dataset),
            FEMALE,
            50,
            predicted,
            rng=np.random.default_rng(seed + 2),
            dataset_size=len(dataset),
        )
        with AuditSession(GroundTruthOracle(dataset), seed=seed + 2) as session:
            report = session.run(
                ClassifierAuditSpec(
                    group=FEMALE, tau=50, predicted_positive=predicted
                )
            )
        assert report.result == legacy
        assert report.tasks == legacy.tasks


@pytest.mark.parametrize("seed", SEEDS)
class TestEngineSessionEquivalence:
    """Engine sessions preserve verdicts/counts (tasks may differ by the
    documented speculation/caching deltas)."""

    def test_group_coverage_verdicts(self, seed):
        counts, dataset = make_dataset(seed)
        target = group(race="black")
        legacy = group_coverage(
            GroundTruthOracle(dataset), target, 60, dataset_size=len(dataset)
        )
        with AuditSession(GroundTruthOracle(dataset), engine=True) as session:
            report = session.run(GroupAuditSpec(predicate=target, tau=60))
        assert report.result.covered == legacy.covered
        assert report.result.count == legacy.count
        assert report.result.discovered_indices == legacy.discovered_indices
        assert report.tasks.n_rounds < legacy.tasks.n_rounds or legacy.tasks.total < 20

    def test_multiple_coverage_verdicts(self, seed):
        counts, dataset = make_dataset(seed)
        groups = [group(race=value) for value in counts]
        legacy = multiple_coverage(
            GroundTruthOracle(dataset),
            groups,
            50,
            rng=np.random.default_rng(seed),
            dataset_size=len(dataset),
        )
        with AuditSession(
            GroundTruthOracle(dataset), engine=True, seed=seed
        ) as session:
            report = session.run(MultipleAuditSpec(groups=tuple(groups), tau=50))
        for ours, theirs in zip(report.result.entries, legacy.entries):
            assert (ours.covered, ours.count) == (theirs.covered, theirs.count)


@pytest.mark.parametrize("seed", SEEDS)
def test_report_json_round_trip_is_exact(seed):
    """`AuditReport.from_json(report.to_json())` reconstructs an equal
    object for every spec kind, sequential and engine mode."""
    counts, dataset = make_dataset(seed)
    groups = [group(race=value) for value in counts]
    specs = [
        GroupAuditSpec(predicate=group(race="black"), tau=30),
        BaseAuditSpec(predicate=group(race="hispanic"), tau=10),
        MultipleAuditSpec(groups=tuple(groups), tau=40),
    ]
    for engine in (None, True):
        with AuditSession(
            GroundTruthOracle(dataset), engine=engine, seed=seed
        ) as session:
            for spec in specs:
                report = session.run(spec)
                assert AuditReport.from_json(report.to_json()) == report
            batch = session.run_many(specs)
            assert AuditReport.from_json(batch.to_json()) == batch


def test_run_many_matches_individual_runs_sequentially():
    """A sequential batch is literally the runs in input order."""
    counts, dataset = make_dataset(7)
    specs = [
        GroupAuditSpec(predicate=group(race="black"), tau=30),
        BaseAuditSpec(predicate=group(race="hispanic"), tau=10),
    ]
    with AuditSession(GroundTruthOracle(dataset)) as session:
        individual = [session.run(spec).result for spec in specs]
    with AuditSession(GroundTruthOracle(dataset)) as session:
        batch = session.run_many(specs)
    assert list(batch.results) == individual
    assert [entry.spec for entry in batch.entries] == specs
