"""Spec dataclasses: immutability, normalization, serialization."""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.audit import (
    BaseAuditSpec,
    ClassifierAuditSpec,
    GroupAuditSpec,
    IntersectionalAuditSpec,
    MultipleAuditSpec,
    spec_from_dict,
)
from repro.data.groups import Negation, SuperGroup, group
from repro.data.schema import Schema
from repro.errors import InvalidParameterError

FEMALE = group(gender="female")
MALE = group(gender="male")


class TestNormalization:
    def test_view_ndarray_becomes_tuple_of_ints(self):
        spec = GroupAuditSpec(
            predicate=FEMALE, tau=5, view=np.array([3, 1, 2], dtype=np.int32)
        )
        assert spec.view == (3, 1, 2)
        assert all(type(i) is int for i in spec.view)

    def test_view_none_stays_none(self):
        spec = GroupAuditSpec(predicate=FEMALE, tau=5)
        assert spec.view is None
        assert spec.view_array() is None

    def test_view_array_round_trips(self):
        spec = BaseAuditSpec(predicate=FEMALE, tau=5, view=[5, 7])
        np.testing.assert_array_equal(
            spec.view_array(), np.array([5, 7], dtype=np.int64)
        )

    def test_groups_normalized_to_tuple(self):
        spec = MultipleAuditSpec(groups=[FEMALE, MALE], tau=5)
        assert spec.groups == (FEMALE, MALE)

    def test_predicted_positive_normalized(self):
        spec = ClassifierAuditSpec(
            group=FEMALE, tau=5, predicted_positive=np.array([9, 4])
        )
        assert spec.predicted_positive == (9, 4)

    def test_specs_are_frozen_and_hashable(self):
        spec = GroupAuditSpec(predicate=FEMALE, tau=5, view=[1, 2])
        with pytest.raises(dataclasses.FrozenInstanceError):
            spec.tau = 6
        assert hash(spec) == hash(GroupAuditSpec(predicate=FEMALE, tau=5, view=[1, 2]))

    def test_equal_specs_compare_equal(self):
        assert GroupAuditSpec(predicate=FEMALE, tau=5) == GroupAuditSpec(
            predicate=FEMALE, tau=5
        )
        assert GroupAuditSpec(predicate=FEMALE, tau=5) != GroupAuditSpec(
            predicate=FEMALE, tau=6
        )


class TestSerialization:
    SPECS = [
        GroupAuditSpec(predicate=FEMALE, tau=5, n=10, view=(0, 1, 2)),
        GroupAuditSpec(predicate=SuperGroup([FEMALE, MALE]), tau=3),
        GroupAuditSpec(predicate=Negation(FEMALE), tau=3),
        BaseAuditSpec(predicate=FEMALE, tau=4),
        MultipleAuditSpec(
            groups=(FEMALE, MALE),
            tau=7,
            n=20,
            c=1.5,
            multi=True,
            attribute_supergroup_members=True,
            view=(4, 5, 6),
        ),
        IntersectionalAuditSpec(
            schema=Schema.from_dict(
                {"gender": ["male", "female"], "race": ["white", "black"]}
            ),
            tau=9,
            c=0.0,
        ),
        ClassifierAuditSpec(
            group=FEMALE,
            tau=6,
            predicted_positive=(1, 2, 3),
            sample_fraction=0.2,
            fp_threshold=0.5,
            view=(0, 1, 2, 3, 4),
        ),
    ]

    @pytest.mark.parametrize("spec", SPECS, ids=lambda s: s.describe())
    def test_round_trip_is_lossless(self, spec):
        assert spec_from_dict(spec.to_dict()) == spec

    @pytest.mark.parametrize("spec", SPECS, ids=lambda s: s.describe())
    def test_dict_form_is_json_compatible(self, spec):
        import json

        assert spec_from_dict(json.loads(json.dumps(spec.to_dict()))) == spec

    def test_unknown_kind_rejected(self):
        with pytest.raises(InvalidParameterError):
            spec_from_dict({"kind": "nope"})
