"""AuditSession behavior: binding, budgets, progress, run_many, warnings."""

from __future__ import annotations

import warnings

import numpy as np
import pytest

from repro.audit import (
    AuditProgress,
    AuditSession,
    BaseAuditSpec,
    GroupAuditSpec,
    MultipleAuditSpec,
)
from repro.core.group_coverage import group_coverage
from repro.core.multiple_coverage import multiple_coverage
from repro.crowd.oracle import GroundTruthOracle
from repro.data.groups import group
from repro.data.synthetic import binary_dataset, single_attribute_dataset
from repro.engine import QueryEngine
from repro.errors import InvalidParameterError

FEMALE = group(gender="female")
MALE = group(gender="male")


@pytest.fixture
def dataset():
    return binary_dataset(2000, 25, rng=np.random.default_rng(3))


class TestBinding:
    def test_dataset_size_inferred_from_oracle(self, dataset):
        with AuditSession(GroundTruthOracle(dataset)) as session:
            assert session.dataset_size == len(dataset)
            report = session.run(GroupAuditSpec(predicate=FEMALE, tau=30))
        assert report.result.count == 25

    def test_explicit_dataset_size_wins(self, dataset):
        with AuditSession(GroundTruthOracle(dataset), dataset_size=100) as session:
            report = session.run(GroupAuditSpec(predicate=FEMALE, tau=5))
        # Only the first 100 objects were searched.
        assert all(index < 100 for index in report.result.discovered_indices)

    def test_engine_true_builds_engine_over_session(self, dataset):
        with AuditSession(
            GroundTruthOracle(dataset), engine=True, batch_size=16, speculation=0
        ) as session:
            assert isinstance(session.engine, QueryEngine)
            assert session.engine.batch_size == 16
            assert session.engine.speculation == 0

    def test_adopting_foreign_engine_is_rejected(self, dataset):
        other_oracle = GroundTruthOracle(dataset)
        engine = QueryEngine(other_oracle)
        with pytest.raises(InvalidParameterError):
            AuditSession(GroundTruthOracle(dataset), engine=engine)

    def test_adopting_own_engine_is_accepted(self, dataset):
        oracle = GroundTruthOracle(dataset)
        engine = QueryEngine(oracle)
        with AuditSession(oracle, engine=engine) as session:
            assert session.engine is engine
            report = session.run(GroupAuditSpec(predicate=FEMALE, tau=30))
        assert report.engine_stats is not None
        assert report.engine_stats.oracle_round_trips > 0

    def test_batch_size_requires_engine_true(self, dataset):
        with pytest.raises(InvalidParameterError):
            AuditSession(GroundTruthOracle(dataset), batch_size=8)

    def test_seed_and_rng_are_mutually_exclusive(self, dataset):
        with pytest.raises(InvalidParameterError):
            AuditSession(
                GroundTruthOracle(dataset),
                seed=1,
                rng=np.random.default_rng(1),
            )

    def test_rng_required_for_sampling_specs(self, dataset):
        with AuditSession(GroundTruthOracle(dataset)) as session:
            with pytest.raises(InvalidParameterError, match="seed=.*or rng="):
                session.run(MultipleAuditSpec(groups=(FEMALE, MALE), tau=10))

    def test_task_budget_installed_and_restored(self, dataset):
        oracle = GroundTruthOracle(dataset, budget=7777)
        with AuditSession(oracle, task_budget=50) as session:
            assert oracle.ledger.budget == 50
            assert session.task_budget == 50
        assert oracle.ledger.budget == 7777


class TestRunMany:
    def test_cross_spec_dedup_on_one_engine(self, dataset):
        """Two identical group specs in one batch pay once."""
        oracle = GroundTruthOracle(dataset)
        with AuditSession(oracle, engine=True) as session:
            batch = session.run_many(
                [
                    GroupAuditSpec(predicate=FEMALE, tau=30),
                    GroupAuditSpec(predicate=FEMALE, tau=30),
                ]
            )
        first, second = batch.results
        assert (first.covered, first.count) == (second.covered, second.count)
        # The second spec's questions were all in flight already.
        assert second.tasks.n_set_queries == 0
        assert batch.engine_stats.deduped_queries >= first.tasks.n_set_queries

        # Solo run for comparison: the batch cost one spec's bill, not two.
        solo_oracle = GroundTruthOracle(dataset)
        with AuditSession(solo_oracle, engine=True) as solo:
            solo.run(GroupAuditSpec(predicate=FEMALE, tau=30))
        assert oracle.ledger.total == solo_oracle.ledger.total

    def test_mixed_specs_keep_input_order(self, dataset):
        with AuditSession(GroundTruthOracle(dataset), engine=True) as session:
            batch = session.run_many(
                [
                    BaseAuditSpec(predicate=FEMALE, tau=5),
                    GroupAuditSpec(predicate=FEMALE, tau=30),
                    GroupAuditSpec(predicate=MALE, tau=10),
                ]
            )
        kinds = [type(entry.spec).__name__ for entry in batch.entries]
        assert kinds == ["BaseAuditSpec", "GroupAuditSpec", "GroupAuditSpec"]
        assert batch.results[2].covered  # males are the majority

    def test_attributed_tasks_sum_to_engine_dispatch(self, dataset):
        with AuditSession(GroundTruthOracle(dataset), engine=True) as session:
            batch = session.run_many(
                [
                    GroupAuditSpec(predicate=FEMALE, tau=30),
                    GroupAuditSpec(predicate=MALE, tau=10),
                ]
            )
        attributed = sum(result.tasks.n_set_queries for result in batch.results)
        assert attributed == batch.engine_stats.dispatched_queries
        assert attributed == batch.tasks.n_set_queries


class TestProgress:
    def test_progress_events_bracket_the_run(self, dataset):
        events: list[AuditProgress] = []
        spec = GroupAuditSpec(predicate=FEMALE, tau=30)
        with AuditSession(
            GroundTruthOracle(dataset), engine=True, progress=events.append
        ) as session:
            report = session.run(spec)
        stages = [event.stage for event in events]
        assert stages[0] == "start"
        assert stages[-1] == "finish"
        assert stages.count("round") == report.engine_stats.scheduler_rounds
        assert events[-1].tasks == report.tasks.total
        # Monotone progress totals.
        rounds = [event.tasks for event in events if event.stage == "round"]
        assert rounds == sorted(rounds)

    def test_per_run_callback_overrides_session_default(self, dataset):
        session_events, run_events = [], []
        with AuditSession(
            GroundTruthOracle(dataset), progress=session_events.append
        ) as session:
            session.run(
                GroupAuditSpec(predicate=FEMALE, tau=5),
                on_progress=run_events.append,
            )
        assert not session_events
        assert run_events

    def test_sequential_round_events_count_oracle_asks(self, dataset):
        events: list[AuditProgress] = []
        with AuditSession(GroundTruthOracle(dataset)) as session:
            report = session.run(
                GroupAuditSpec(predicate=FEMALE, tau=30),
                on_progress=events.append,
            )
        rounds = [event for event in events if event.stage == "round"]
        assert len(rounds) == report.tasks.total


class TestLegacyDeprecation:
    def test_adhoc_engine_inside_active_session_warns_once(self, dataset):
        oracle = GroundTruthOracle(dataset)
        adhoc = QueryEngine(oracle)
        with AuditSession(oracle, engine=True) as session:
            with pytest.warns(
                DeprecationWarning,
                match=r"group_coverage\(\) called with an ad-hoc engine= while "
                r"an AuditSession is active on the same oracle",
            ):
                group_coverage(
                    oracle, FEMALE, 30, dataset_size=len(dataset), engine=adhoc
                )
            # Once per session: the second call stays silent.
            with warnings.catch_warnings():
                warnings.simplefilter("error")
                group_coverage(
                    oracle, FEMALE, 30, dataset_size=len(dataset), engine=adhoc
                )

    def test_warning_is_suppressible(self, dataset):
        oracle = GroundTruthOracle(dataset)
        adhoc = QueryEngine(oracle)
        with AuditSession(oracle, engine=True) as session:
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", DeprecationWarning)
                result = group_coverage(
                    oracle, FEMALE, 30, dataset_size=len(dataset), engine=adhoc
                )
        assert result.count == 25

    def test_sessions_own_engine_does_not_warn(self, dataset):
        oracle = GroundTruthOracle(dataset)
        engine = QueryEngine(oracle)
        with AuditSession(oracle, engine=engine):
            with warnings.catch_warnings():
                warnings.simplefilter("error")
                group_coverage(
                    oracle, FEMALE, 30, dataset_size=len(dataset), engine=engine
                )

    def test_no_warning_without_active_session(self, dataset):
        oracle = GroundTruthOracle(dataset)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            group_coverage(
                oracle,
                FEMALE,
                30,
                dataset_size=len(dataset),
                engine=QueryEngine(oracle),
            )

    def test_multiple_coverage_warns_too(self):
        counts = {"white": 500, "black": 40}
        ds = single_attribute_dataset(counts, rng=np.random.default_rng(2))
        oracle = GroundTruthOracle(ds)
        adhoc = QueryEngine(oracle)
        with AuditSession(oracle, engine=True):
            with pytest.warns(DeprecationWarning, match="multiple_coverage"):
                multiple_coverage(
                    oracle,
                    [group(race=v) for v in counts],
                    30,
                    rng=np.random.default_rng(0),
                    dataset_size=len(ds),
                    engine=adhoc,
                )
