"""Unreadable checkpoints raise CheckpointVersionError, never KeyError.

Session checkpoints are version 2 (compact ``{"run": [start, stop]}``
set-answer entries); version-1 checkpoints (exhaustive index lists)
remain readable. Anything else — an unknown version stamp, a file whose
entries do not match the version it declares, a job record from a
different build — must fail with a clear
:class:`~repro.errors.CheckpointVersionError` carrying the offending
field, not surface as a ``KeyError`` from deep inside the parser.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.audit import AuditSession, GroupAuditSpec
from repro.audit.serialization import set_answers_from_list
from repro.crowd.oracle import GroundTruthOracle
from repro.data.groups import group
from repro.data.synthetic import binary_dataset
from repro.errors import CheckpointVersionError, InvalidParameterError
from repro.service import AuditService, DirectoryJobStore

FEMALE = group(gender="female")


@pytest.fixture
def dataset():
    return binary_dataset(2_000, 30, rng=np.random.default_rng(1))


# ----------------------------------------------------------------------
# session checkpoints
# ----------------------------------------------------------------------
def test_hand_written_v1_session_checkpoint_resumes_and_replays(dataset):
    """The v1 format — exhaustive ``indices`` lists, no ``run`` keys —
    must keep resuming: answers replay for free, verdicts match."""
    from repro.errors import BudgetExceededError

    spec = GroupAuditSpec(predicate=FEMALE, tau=50)
    interrupted = AuditSession(GroundTruthOracle(dataset), task_budget=40)
    with pytest.raises(BudgetExceededError):
        with interrupted:
            interrupted.run(spec)
    v2 = json.loads(interrupted.checkpoint())
    assert v2["version"] == 3 and any("run" in e for e in v2["set_answers"])
    # Down-convert to the version-1 shape an older build wrote: every
    # entry spells its indices out, nothing uses compact run endpoints.
    v1 = dict(v2, version=1)
    v1["set_answers"] = [
        (
            {
                "predicate": entry["predicate"],
                "indices": list(range(entry["run"][0], entry["run"][1])),
                "answer": entry["answer"],
            }
            if "run" in entry
            else entry
        )
        for entry in v2["set_answers"]
    ]

    def finish(checkpoint_text):
        oracle = GroundTruthOracle(dataset)
        session = AuditSession.resume(checkpoint_text, oracle)
        assert session.pending_specs == (spec,)
        with session:
            report = session.run_pending()
        return report.entries[0].result, oracle.ledger.total

    v1_result, v1_paid = finish(json.dumps(v1))
    v2_result, v2_paid = finish(json.dumps(v2))
    assert (v1_result.covered, v1_result.count) == (v2_result.covered, v2_result.count)
    assert v1_paid == v2_paid  # identical replay: not one extra query bought


def test_unknown_session_version_raises_checkpoint_error(dataset):
    checkpoint = json.dumps({"version": 99})
    with pytest.raises(CheckpointVersionError, match="version 99"):
        AuditSession.resume(checkpoint, GroundTruthOracle(dataset))
    # Still catchable as the historical InvalidParameterError.
    with pytest.raises(InvalidParameterError):
        AuditSession.resume(checkpoint, GroundTruthOracle(dataset))


def test_session_checkpoint_missing_required_field_names_it(dataset):
    checkpoint = json.dumps({"version": 2, "seed": None})  # no "engine", ...
    with pytest.raises(CheckpointVersionError, match="'engine'"):
        AuditSession.resume(checkpoint, GroundTruthOracle(dataset))


def test_malformed_nested_entries_raise_checkpoint_error(dataset):
    """Entries missing nested fields ('answer', 'labels', spec fields)
    must also surface as CheckpointVersionError, not bare KeyError."""
    base = {
        "version": 2,
        "seed": None,
        "rng_state": None,
        "dataset_size": len(dataset),
        "engine": None,
        "pending": [],
        "set_answers": [],
        "point_answers": [],
    }
    predicate = {"type": "group", "conditions": {"gender": "female"}}
    missing_answer = dict(base, set_answers=[{"predicate": predicate, "run": [0, 5]}])
    with pytest.raises(CheckpointVersionError, match="'answer'"):
        AuditSession.resume(json.dumps(missing_answer), GroundTruthOracle(dataset))
    missing_labels = dict(base, point_answers=[{"index": 3}])
    with pytest.raises(CheckpointVersionError, match="'labels'"):
        AuditSession.resume(json.dumps(missing_labels), GroundTruthOracle(dataset))
    broken_spec = dict(base, pending=[{"kind": "group", "tau": 5}])
    with pytest.raises(CheckpointVersionError, match="'predicate'"):
        AuditSession.resume(json.dumps(broken_spec), GroundTruthOracle(dataset))
    for broken_rng in ({}, {"bit_generator": "NoSuchGenerator"}):
        with pytest.raises(CheckpointVersionError, match="rng_state"):
            AuditSession.resume(
                json.dumps(dict(base, rng_state=broken_rng)),
                GroundTruthOracle(dataset),
            )


def test_malformed_set_answer_entry_raises_checkpoint_error():
    entries = [
        {
            "predicate": {"type": "group", "conditions": {"gender": "female"}},
            "answer": True,
            # neither "run" nor "indices": an incompatible writer
        }
    ]
    with pytest.raises(CheckpointVersionError, match="neither 'run' endpoints"):
        set_answers_from_list(entries)


# ----------------------------------------------------------------------
# service checkpoints (DirectoryJobStore files)
# ----------------------------------------------------------------------
def make_store_with_checkpoint(tmp_path, dataset):
    store = DirectoryJobStore(tmp_path / "state")
    with AuditService(GroundTruthOracle(dataset), job_store=store) as service:
        service.submit(GroupAuditSpec(predicate=FEMALE, tau=50))
        service.drain()
    return store


def test_hand_written_v1_answer_log_missing_fields_is_versioned_error(
    tmp_path, dataset
):
    """An answers.json stamped version 1 but written by an older build
    (missing the fields this reader requires) must not KeyError."""
    store = DirectoryJobStore(tmp_path / "state")
    store.save_answers(
        {
            "version": 1,
            "set_answers": [],
            "point_answers": [],
            # v1-as-written-by-an-older-build: no engine/max_active_jobs/...
        }
    )
    with pytest.raises(CheckpointVersionError, match="'engine'"):
        AuditService.resume(store, GroundTruthOracle(dataset))


def test_unknown_answer_log_version_raises_checkpoint_error(tmp_path, dataset):
    store = make_store_with_checkpoint(tmp_path, dataset)
    answers = store.load_answers()
    answers["version"] = 3
    store.save_answers(answers)
    with pytest.raises(CheckpointVersionError, match="version 3"):
        AuditService.resume(store, GroundTruthOracle(dataset))


def test_job_record_with_unknown_version_raises_checkpoint_error(
    tmp_path, dataset
):
    store = make_store_with_checkpoint(tmp_path, dataset)
    jobs = store.load_jobs()
    job_id, record = next(iter(jobs.items()))
    record["version"] = 99
    store.save_job(job_id, record)
    with pytest.raises(CheckpointVersionError, match="job-record version 99"):
        AuditService.resume(store, GroundTruthOracle(dataset))


def test_job_record_missing_field_names_it(tmp_path, dataset):
    store = make_store_with_checkpoint(tmp_path, dataset)
    jobs = store.load_jobs()
    job_id, record = next(iter(jobs.items()))
    del record["events"]
    store.save_job(job_id, record)
    with pytest.raises(CheckpointVersionError, match="'events'"):
        AuditService.resume(store, GroundTruthOracle(dataset))


def test_job_record_without_version_stamp_raises_checkpoint_error(
    tmp_path, dataset
):
    store = make_store_with_checkpoint(tmp_path, dataset)
    jobs = store.load_jobs()
    job_id, record = next(iter(jobs.items()))
    del record["version"]
    store.save_job(job_id, record)
    with pytest.raises(CheckpointVersionError, match="version None"):
        AuditService.resume(store, GroundTruthOracle(dataset))
