"""The multi-tenant AuditService: jobs, fairness, failure isolation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.audit import AuditSession, GroupAuditSpec, MultipleAuditSpec
from repro.crowd.backends import LatencyModelBackend, ThreadedBackend
from repro.crowd.oracle import GroundTruthOracle
from repro.data.groups import group
from repro.data.synthetic import single_attribute_dataset
from repro.errors import (
    BudgetExceededError,
    InvalidParameterError,
    JobFailedError,
)
from repro.service import AuditService, InMemoryJobStore, JobStatus

COUNTS = {f"r{i}": 120 + 40 * i for i in range(4)}
TAU = 100


@pytest.fixture(scope="module")
def dataset():
    return single_attribute_dataset(COUNTS, rng=np.random.default_rng(5))


def spec_for(value: str, tau: int = TAU) -> GroupAuditSpec:
    return GroupAuditSpec(predicate=group(race=value), tau=tau)


class TestSingleJob:
    def test_group_job_matches_a_session_run(self, dataset):
        with AuditSession(GroundTruthOracle(dataset), engine=True) as session:
            reference = session.run(spec_for("r1"))

        oracle = GroundTruthOracle(dataset)
        with AuditService(oracle) as service:
            handle = service.submit(spec_for("r1"), tenant="alice")
            report = handle.result()
        assert report.result.covered == reference.result.covered
        assert report.result.count == reference.result.count
        assert oracle.ledger.total == reference.tasks.total
        assert handle.status == JobStatus.SUCCEEDED

    def test_blocking_spec_kinds_run_on_the_shared_engine(self, dataset):
        spec = MultipleAuditSpec(
            groups=tuple(group(race=value) for value in COUNTS), tau=TAU
        )
        with AuditSession(
            GroundTruthOracle(dataset), engine=True, seed=23
        ) as session:
            reference = session.run(spec)

        with AuditService(GroundTruthOracle(dataset)) as service:
            handle = service.submit(spec, seed=23)
            report = handle.result()
        for ours, theirs in zip(
            report.result.entries, reference.result.entries
        ):
            assert (ours.covered, ours.count) == (theirs.covered, theirs.count)

    def test_rng_spec_without_seed_fails_cleanly(self, dataset):
        spec = MultipleAuditSpec(groups=(group(race="r0"),), tau=5)
        with AuditService(GroundTruthOracle(dataset)) as service:
            handle = service.submit(spec)
            service.drain()
            assert handle.status == JobStatus.FAILED
            with pytest.raises(JobFailedError):
                handle.result()
            assert any(event.stage == "failed" for event in handle.events())


class TestConcurrentJobs:
    def test_inline_service_is_bit_identical_to_run_many(self, dataset):
        specs = [spec_for(value) for value in COUNTS]
        reference_oracle = GroundTruthOracle(dataset)
        with AuditSession(reference_oracle, engine=True) as session:
            reference = session.run_many(specs)

        oracle = GroundTruthOracle(dataset)
        with AuditService(oracle, max_active_jobs=len(specs)) as service:
            handles = [service.submit(spec) for spec in specs]
            service.drain()
            reports = [handle.result() for handle in handles]

        for report, entry in zip(reports, reference.entries):
            assert report.result.covered == entry.result.covered
            assert report.result.count == entry.result.count
            # Per-job attribution matches run_many's dispatched split.
            assert report.tasks.n_set_queries == entry.result.tasks.n_set_queries
        assert oracle.ledger.total == reference_oracle.ledger.total
        assert oracle.ledger.n_rounds == reference_oracle.ledger.n_rounds

    def test_cross_tenant_dedup_pays_once(self, dataset):
        oracle = GroundTruthOracle(dataset)
        solo = GroundTruthOracle(dataset)
        with AuditSession(solo, engine=True) as session:
            session.run(spec_for("r2"))
        with AuditService(oracle, max_active_jobs=2) as service:
            service.submit(spec_for("r2"), tenant="alice")
            service.submit(spec_for("r2"), tenant="bob")
            service.drain()
        # Identical audits from two tenants: one crowd bill.
        assert oracle.ledger.total == solo.ledger.total

    def test_fair_share_admits_the_second_tenant_first_wave(self, dataset):
        with AuditService(GroundTruthOracle(dataset), max_active_jobs=2) as service:
            bulk = [
                service.submit(spec_for(value), tenant="bulk")
                for value in list(COUNTS)[:3]
            ]
            urgent = service.submit(spec_for("r3"), tenant="urgent")
            service.step()
            # One slot went to the bulk tenant's first job, the other to
            # the urgent tenant — not to the bulk tenant's second job.
            started = {
                handle.job_id
                for handle in (*bulk, urgent)
                if any(event.stage == "started" for event in handle.events())
            }
            assert bulk[0].job_id in started
            assert urgent.job_id in started
            assert bulk[1].job_id not in started
            service.drain()

    def test_priority_orders_jobs_within_a_tenant(self, dataset):
        with AuditService(GroundTruthOracle(dataset), max_active_jobs=1) as service:
            low = service.submit(spec_for("r0"), priority=0)
            high = service.submit(spec_for("r1"), priority=5)
            mid = service.submit(spec_for("r2"), priority=1)
            service.drain()

            def started_round(handle):
                return next(
                    event.round
                    for event in handle.events()
                    if event.stage == "started"
                )

            assert started_round(high) <= started_round(mid) <= started_round(low)


class TestCancellation:
    def test_cancel_queued_job(self, dataset):
        with AuditService(GroundTruthOracle(dataset), max_active_jobs=1) as service:
            running = service.submit(spec_for("r0"))
            queued = service.submit(spec_for("r1"))
            service.step()
            assert queued.cancel()
            service.drain()
            assert queued.status == JobStatus.CANCELLED
            assert running.status == JobStatus.SUCCEEDED
            with pytest.raises(JobFailedError):
                queued.result()

    def test_cancel_running_group_job_stops_its_spending(self, dataset):
        oracle = GroundTruthOracle(dataset)
        with AuditService(oracle, max_active_jobs=2) as service:
            victim = service.submit(spec_for("r0"))
            survivor = service.submit(spec_for("r3"))
            service.step()
            assert victim.cancel()
            service.drain()
            assert victim.status == JobStatus.CANCELLED
            assert survivor.status == JobStatus.SUCCEEDED

    def test_cancel_finished_job_is_a_no_op(self, dataset):
        with AuditService(GroundTruthOracle(dataset)) as service:
            handle = service.submit(spec_for("r0"))
            service.drain()
            assert not handle.cancel()
            assert handle.status == JobStatus.SUCCEEDED

    def test_cancel_is_idempotent_on_cancelled_jobs(self, dataset):
        # Double-cancel is the race every distributed caller hits
        # (client retry + worker marker): second call is a quiet False.
        with AuditService(GroundTruthOracle(dataset), max_active_jobs=1) as service:
            service.submit(spec_for("r0"))
            victim = service.submit(spec_for("r1"))
            assert victim.cancel()
            assert not victim.cancel()
            assert victim.status == JobStatus.CANCELLED
            service.drain()
            assert victim.status == JobStatus.CANCELLED

    def test_cancel_failed_job_is_a_no_op(self, dataset):
        with AuditService(GroundTruthOracle(dataset)) as service:
            handle = service.submit(
                # rng spec without a seed fails cleanly at start
                MultipleAuditSpec(groups=(group(race="r0"),), tau=5)
            )
            service.drain()
            assert handle.status == JobStatus.FAILED
            assert not handle.cancel()
            assert handle.status == JobStatus.FAILED

    def test_cancel_unknown_job_raises_typed_error(self, dataset):
        with AuditService(GroundTruthOracle(dataset)) as service:
            with pytest.raises(InvalidParameterError):
                service.cancel("job-99999")

    def test_cancel_suspended_job(self, dataset):
        # A budget-suspended job is withdrawable like a queued one; its
        # siblings stay suspended and resumable.
        service = AuditService(
            GroundTruthOracle(dataset),
            max_active_jobs=2,
            job_store=InMemoryJobStore(),
            task_budget=15,
        )
        with service:
            first = service.submit(spec_for("r0"))
            second = service.submit(spec_for("r1"))
            with pytest.raises(BudgetExceededError):
                service.drain()
            assert first.status == JobStatus.SUSPENDED
            assert first.cancel()
            assert first.status == JobStatus.CANCELLED
            assert not first.cancel()
            assert second.status == JobStatus.SUSPENDED


class TestBudgets:
    def test_exhaustion_suspends_every_live_job(self, dataset):
        store = InMemoryJobStore()
        service = AuditService(
            GroundTruthOracle(dataset),
            max_active_jobs=2,
            job_store=store,
            task_budget=15,
        )
        with service:
            first = service.submit(spec_for("r0"))
            second = service.submit(spec_for("r1"))
            with pytest.raises(BudgetExceededError):
                service.drain()
            assert first.status == JobStatus.SUSPENDED
            assert second.status == JobStatus.SUSPENDED
            # Suspension auto-checkpointed: the store can revive both.
            assert len(store.load_jobs()) == 2
            assert store.load_answers() is not None

    def test_resume_after_exhaustion_finishes_the_jobs(self, dataset):
        reference_oracle = GroundTruthOracle(dataset)
        with AuditSession(reference_oracle, engine=True) as session:
            reference = session.run_many([spec_for("r0"), spec_for("r1")])

        store = InMemoryJobStore()
        oracle = GroundTruthOracle(dataset)
        service = AuditService(
            oracle, max_active_jobs=2, job_store=store, task_budget=15
        )
        with service:
            service.submit(spec_for("r0"))
            service.submit(spec_for("r1"))
            with pytest.raises(BudgetExceededError):
                service.drain()

        revived = AuditService.resume(store, oracle, task_budget=100_000)
        with revived:
            revived.drain()
            reports = [handle.result() for handle in revived.jobs()]
        for report, entry in zip(reports, reference.entries):
            assert report.result.covered == entry.result.covered
            assert report.result.count == entry.result.count
        # Both phases together paid exactly the uninterrupted bill.
        assert oracle.ledger.total == reference_oracle.ledger.total

    def test_non_positive_budget_rejected(self, dataset):
        with pytest.raises(InvalidParameterError):
            AuditService(GroundTruthOracle(dataset), task_budget=0)


class TestValidationAndLifecycle:
    def test_unknown_job_id(self, dataset):
        with AuditService(GroundTruthOracle(dataset)) as service:
            with pytest.raises(InvalidParameterError):
                service.status("job-99999")

    def test_submit_after_close_raises(self, dataset):
        service = AuditService(GroundTruthOracle(dataset))
        service.close()
        with pytest.raises(InvalidParameterError):
            service.submit(spec_for("r0"))

    def test_checkpoint_requires_a_store(self, dataset):
        with AuditService(GroundTruthOracle(dataset)) as service:
            with pytest.raises(InvalidParameterError):
                service.checkpoint()

    def test_checkpoint_every_requires_a_store(self, dataset):
        with pytest.raises(InvalidParameterError):
            AuditService(GroundTruthOracle(dataset), checkpoint_every=5)

    def test_max_active_jobs_validated(self, dataset):
        with pytest.raises(InvalidParameterError):
            AuditService(GroundTruthOracle(dataset), max_active_jobs=0)

    def test_submit_many_seeds_unique_across_batches(self, dataset):
        with AuditService(GroundTruthOracle(dataset)) as service:
            first = service.submit_many([spec_for("r0"), spec_for("r1")], seed=5)
            second = service.submit_many([spec_for("r2"), spec_for("r3")], seed=5)
            seeds = [
                service._job(handle.job_id).seed for handle in (*first, *second)
            ]
            assert len(set(seeds)) == len(seeds)
            service.drain()

    def test_describe_mentions_job_tally(self, dataset):
        with AuditService(GroundTruthOracle(dataset)) as service:
            service.submit(spec_for("r0"))
            service.drain()
            assert "succeeded=1" in service.describe()


class TestBackendsUnderTheService:
    def test_latency_backend_overlap_beats_serial(self, dataset):
        """Eight concurrent audits on a simulated-latency crowd finish
        far faster than the same audits run one after another — the
        acceptance property bench_service.py measures at full size."""
        specs = [spec_for(value) for value in COUNTS] * 2  # 8 jobs

        def run(max_active):
            service = AuditService(
                GroundTruthOracle(dataset),
                backend=lambda oracle: LatencyModelBackend(
                    oracle, rng=np.random.default_rng(3)
                ),
                max_active_jobs=max_active,
            )
            with service:
                for position, spec in enumerate(specs):
                    service.submit(spec, tenant=f"tenant-{position}")
                service.drain()
                return service.backend.clock.now()

        serial = run(1)
        overlapped = run(8)
        assert overlapped < serial / 2

    def test_threaded_backend_end_to_end(self, dataset):
        with AuditSession(GroundTruthOracle(dataset), engine=True) as session:
            reference = session.run(spec_for("r2"))
        service = AuditService(
            GroundTruthOracle(dataset),
            backend=lambda oracle: ThreadedBackend(oracle, max_workers=2),
        )
        with service:
            handle = service.submit(spec_for("r2"))
            report = handle.result()
        assert report.result.covered == reference.result.covered
        assert report.result.count == reference.result.count
