"""Kill/resume conformance for reliability-enabled service jobs.

The ISSUE-9 acceptance bar: abandoning a service run mid-flight and
resuming from the :class:`DirectoryJobStore` onto a *fresh*,
identically-configured reliability platform must reproduce the
uninterrupted run bit-for-bit — same verdicts, same task counts, same
estimator state — and must not re-ask a single paid query.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.audit import GroupAuditSpec
from repro.crowd.oracle import CrowdOracle
from repro.crowd.platform import CrowdPlatform
from repro.crowd.reliability import AdaptiveAssignmentPolicy
from repro.crowd.workers import make_worker_pool
from repro.data.groups import group
from repro.data.synthetic import binary_dataset
from repro.errors import BudgetExceededError, CheckpointVersionError
from repro.service import AuditService, DirectoryJobStore

SPECS = (
    GroupAuditSpec(predicate=group(gender="female"), tau=30),
    GroupAuditSpec(predicate=group(gender="male"), tau=30),
)


@pytest.fixture(scope="module")
def dataset():
    return binary_dataset(1_500, 25, rng=np.random.default_rng(7))


def reliability_oracle(dataset):
    """A fresh, deterministically-configured adaptive crowd oracle."""
    pool = make_worker_pool(
        15,
        np.random.default_rng(3),
        error_rate=0.03,
        spammer_fraction=0.2,
        spammer_error_rate=0.45,
    )
    platform = CrowdPlatform(
        dataset,
        pool,
        np.random.default_rng(11),
        reliability=AdaptiveAssignmentPolicy(log_odds_threshold=3.5),
    )
    return CrowdOracle(platform)


def test_kill_resume_is_bit_identical_and_reasks_nothing(tmp_path, dataset):
    # Uninterrupted reference run.
    reference_oracle = reliability_oracle(dataset)
    with AuditService(reference_oracle, seed=9) as service:
        handles = [service.submit(spec) for spec in SPECS]
        service.drain()
        reference = [handle.result() for handle in handles]
    reference_state = reference_oracle.platform.reliability.state_dict()

    # Interrupted run: the budget kills the service mid-flight; the
    # suspension auto-checkpoints jobs, answers, and reliability state.
    store = DirectoryJobStore(tmp_path / "state")
    first_oracle = reliability_oracle(dataset)
    service = AuditService(
        first_oracle, job_store=store, task_budget=130, seed=9
    )
    with service:
        for spec in SPECS:
            service.submit(spec)
        with pytest.raises(BudgetExceededError):
            service.drain()
    paid_before_kill = first_oracle.ledger.total
    assert 0 < paid_before_kill <= 130

    # Resume onto a *fresh* identically-configured platform: nothing of
    # the first platform's in-memory state survives except what the
    # checkpoint carries.
    fresh_oracle = reliability_oracle(dataset)
    revived = AuditService.resume(store, fresh_oracle, task_budget=100_000)
    with revived:
        revived.drain()
        resumed = [handle.result() for handle in revived.jobs()]

    # Bit-identical verdicts and coverage counts.
    for ours, theirs in zip(resumed, reference):
        assert ours.result.covered == theirs.result.covered
        assert ours.result.count == theirs.result.count

    # Bit-identical estimator / tracker / router state.
    assert (
        fresh_oracle.platform.reliability.state_dict() == reference_state
    )

    # Zero re-asked paid queries: the two phases together paid exactly
    # the uninterrupted bill, in tasks and in dollars.
    assert (
        paid_before_kill + fresh_oracle.ledger.total
        == reference_oracle.ledger.total
    )
    assert (
        first_oracle.platform.ledger.n_assignments
        + fresh_oracle.platform.ledger.n_assignments
        == reference_oracle.platform.ledger.n_assignments
    )
    assert first_oracle.platform.ledger.total_cost + (
        fresh_oracle.platform.ledger.total_cost
    ) == pytest.approx(reference_oracle.platform.ledger.total_cost)

    report = revived.reliability_report()
    assert report is not None
    assert "quarantined" in revived.describe()


def test_checkpoint_carries_versioned_reliability_section(tmp_path, dataset):
    store = DirectoryJobStore(tmp_path / "state")
    oracle = reliability_oracle(dataset)
    with AuditService(oracle, job_store=store, seed=9) as service:
        service.submit(SPECS[0])
        service.drain()
        service.checkpoint()
    answers = store.load_answers()
    assert answers["version"] == 2
    assert answers["reliability"]["version"] == 1
    assert answers["reliability"]["platform_rng_state"] is not None


def test_resume_without_reliability_platform_rejected(tmp_path, dataset):
    from repro.crowd.oracle import GroundTruthOracle

    store = DirectoryJobStore(tmp_path / "state")
    oracle = reliability_oracle(dataset)
    with AuditService(oracle, job_store=store, seed=9) as service:
        service.submit(SPECS[0])
        service.drain()
        service.checkpoint()
    with pytest.raises(CheckpointVersionError):
        AuditService.resume(store, GroundTruthOracle(dataset))


def test_v1_answer_log_without_reliability_still_resumes(tmp_path, dataset):
    from repro.crowd.oracle import GroundTruthOracle

    store = DirectoryJobStore(tmp_path / "state")
    oracle = GroundTruthOracle(dataset)
    with AuditService(oracle, job_store=store, seed=9) as service:
        service.submit(SPECS[0])
        service.drain()
        service.checkpoint()
    # Down-convert to the v1 shape an older build wrote: no reliability.
    answers = store.load_answers()
    answers["version"] = 1
    answers.pop("reliability", None)
    store.save_answers(answers)
    revived = AuditService.resume(store, GroundTruthOracle(dataset))
    with revived:
        revived.drain()
    assert revived.reliability_report() is None
