"""JobStore implementations: durability, atomicity, directory resume."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.audit import AuditSession, GroupAuditSpec
from repro.crowd.oracle import GroundTruthOracle
from repro.data.groups import group
from repro.data.synthetic import single_attribute_dataset
from repro.errors import InvalidParameterError
from repro.service import (
    AuditService,
    DirectoryJobStore,
    InMemoryJobStore,
    JobStatus,
)

COUNTS = {"white": 700, "black": 90, "asian": 60}


@pytest.fixture(scope="module")
def dataset():
    return single_attribute_dataset(COUNTS, rng=np.random.default_rng(9))


class TestInMemoryJobStore:
    def test_round_trip(self):
        store = InMemoryJobStore()
        store.save_job("job-00000", {"seq": 0, "status": "queued"})
        store.save_answers({"version": 1, "set_answers": []})
        assert store.load_jobs() == {"job-00000": {"seq": 0, "status": "queued"}}
        assert store.load_answers() == {"version": 1, "set_answers": []}

    def test_records_are_json_safe_copies(self):
        store = InMemoryJobStore()
        record = {"seq": 0, "events": [{"stage": "submitted"}]}
        store.save_job("job-00000", record)
        record["events"].append({"stage": "mutated-after-save"})
        assert store.load_jobs()["job-00000"]["events"] == [{"stage": "submitted"}]

    def test_fresh_store_has_no_answers(self):
        assert InMemoryJobStore().load_answers() is None


class TestDirectoryJobStore:
    def test_layout_and_round_trip(self, tmp_path):
        store = DirectoryJobStore(tmp_path / "ckpt")
        store.save_job("job-00000", {"seq": 0})
        store.save_job("job-00001", {"seq": 1})
        store.save_answers({"version": 1})
        assert (tmp_path / "ckpt" / "jobs" / "job-00000.json").exists()
        assert (tmp_path / "ckpt" / "answers.json").exists()
        assert set(store.load_jobs()) == {"job-00000", "job-00001"}
        assert store.load_answers() == {"version": 1}

    def test_no_scratch_files_left_behind(self, tmp_path):
        store = DirectoryJobStore(tmp_path)
        store.save_answers({"version": 1})
        store.save_job("job-00000", {"seq": 0})
        assert not list(tmp_path.rglob("*.tmp"))

    def test_overwrite_replaces_whole_record(self, tmp_path):
        store = DirectoryJobStore(tmp_path)
        store.save_job("job-00000", {"seq": 0, "status": "queued"})
        store.save_job("job-00000", {"seq": 0, "status": "succeeded"})
        assert store.load_jobs()["job-00000"]["status"] == "succeeded"

    def test_records_are_plain_json(self, tmp_path):
        store = DirectoryJobStore(tmp_path)
        store.save_job("job-00000", {"seq": 0})
        payload = json.loads((tmp_path / "jobs" / "job-00000.json").read_text())
        assert payload == {"seq": 0}


class TestDirectoryResume:
    def test_service_resumes_from_directory(self, tmp_path, dataset):
        reference_oracle = GroundTruthOracle(dataset)
        specs = [
            GroupAuditSpec(predicate=group(race=value), tau=80) for value in COUNTS
        ]
        with AuditSession(reference_oracle, engine=True) as session:
            reference = session.run_many(specs)

        store = DirectoryJobStore(tmp_path / "service")
        oracle = GroundTruthOracle(dataset)
        service = AuditService(
            oracle, max_active_jobs=3, job_store=store, checkpoint_every=2
        )
        with service:
            for spec in specs:
                service.submit(spec)
            for _ in range(4):  # partial progress, auto-checkpointed
                service.step()
            service.checkpoint()
        # The service object is gone — simulate a crash — but the
        # directory survives into a new process.
        del service

        revived = AuditService.resume(store, GroundTruthOracle(dataset))
        with revived:
            revived.drain()
            reports = [handle.result() for handle in revived.jobs()]
        for report, entry in zip(reports, reference.entries):
            assert report.result.covered == entry.result.covered
            assert report.result.count == entry.result.count
        assert all(
            handle.status == JobStatus.SUCCEEDED for handle in revived.jobs()
        )

    def test_resume_never_reuses_ids_of_post_checkpoint_jobs(self, dataset):
        """Job records persist at submission but the answer log only at
        checkpoints; a job submitted after the last checkpoint must keep
        its id after resume instead of being overwritten by the next
        submission."""
        store = InMemoryJobStore()
        service = AuditService(GroundTruthOracle(dataset), job_store=store)
        service.submit(GroupAuditSpec(predicate=group(race="white"), tau=10))
        service.checkpoint()  # records next_seq=1
        late = service.submit(GroupAuditSpec(predicate=group(race="black"), tau=10))
        del service  # crash: the late job's record is in the store, the
        # answer log still says next_seq=1

        revived = AuditService.resume(store, GroundTruthOracle(dataset))
        with revived:
            fresh = revived.submit(
                GroupAuditSpec(predicate=group(race="asian"), tau=10)
            )
            assert fresh.job_id != late.job_id
            assert revived.handle(late.job_id).spec.predicate == group(race="black")
            revived.drain()
            assert {handle.job_id for handle in revived.jobs()} == {
                "job-00000", "job-00001", "job-00002",
            }

    def test_resume_from_empty_store_raises(self, tmp_path):
        store = DirectoryJobStore(tmp_path)
        dataset = single_attribute_dataset(
            {"a": 10, "b": 10}, rng=np.random.default_rng(0)
        )
        with pytest.raises(InvalidParameterError):
            AuditService.resume(store, GroundTruthOracle(dataset))

    def test_resume_rejects_unknown_version(self, tmp_path, dataset):
        store = DirectoryJobStore(tmp_path)
        store.save_answers({"version": 99})
        with pytest.raises(InvalidParameterError):
            AuditService.resume(store, GroundTruthOracle(dataset))
