"""Cross-process torn-read regression for DirectoryJobStore.

The serving worker protocol (``repro.serving``) rests on one promise:
a reader of ``answers.json`` / job records sees some *complete* write —
never a half-replaced hybrid, never a partially flushed temp file. This
module races a writer process against a reader process on the same
directory and fails on the first inconsistent record either observes.
"""

from __future__ import annotations

import hashlib
import json
import multiprocessing
import os

import pytest

from repro.service import DirectoryJobStore

#: Big enough that a non-atomic write would be observable mid-flush.
_BLOB_WORDS = 4000
_WRITES = 150


def _payload(nonce: int) -> dict:
    """A self-verifying record: checksum covers every other field."""
    blob = [nonce] * _BLOB_WORDS
    body = json.dumps({"nonce": nonce, "blob": blob}, sort_keys=True)
    return {
        "nonce": nonce,
        "blob": blob,
        "checksum": hashlib.sha256(body.encode()).hexdigest(),
    }


def _verify(record: dict) -> bool:
    body = json.dumps(
        {"nonce": record["nonce"], "blob": record["blob"]}, sort_keys=True
    )
    return hashlib.sha256(body.encode()).hexdigest() == record["checksum"]


def _writer(root: str, done) -> None:
    store = DirectoryJobStore(root)
    for nonce in range(_WRITES):
        store.save_answers(_payload(nonce))
        store.save_job("job-00000", _payload(nonce))
    done.set()


def _reader(root: str, done, failures) -> None:
    store = DirectoryJobStore(root)
    reads = 0
    while not done.is_set() or reads == 0:
        answers = store.load_answers()
        if answers is not None:
            reads += 1
            if not _verify(answers):
                failures.put(f"torn answers read: nonce={answers.get('nonce')}")
                return
        jobs = store.load_jobs()
        record = jobs.get("job-00000")
        if record is not None and not _verify(record):
            failures.put(f"torn job read: nonce={record.get('nonce')}")
            return
    failures.put(None)  # sentinel: clean exit after >=1 verified read


class TestCrossProcessAtomicity:
    def test_reader_never_observes_a_torn_checkpoint(self, tmp_path):
        """A second process hammering load() while this-process-spawned
        writer replaces the record 150 times must only ever see
        checksum-consistent snapshots."""
        context = multiprocessing.get_context("spawn")
        done = context.Event()
        failures = context.Queue()
        root = str(tmp_path / "store")
        DirectoryJobStore(root)  # create the directory up front
        reader = context.Process(target=_reader, args=(root, done, failures))
        writer = context.Process(target=_writer, args=(root, done))
        reader.start()
        writer.start()
        writer.join(timeout=120)
        reader.join(timeout=120)
        assert writer.exitcode == 0
        assert reader.exitcode == 0
        outcome = failures.get(timeout=10)
        assert outcome is None, outcome

    def test_two_writers_last_complete_record_wins(self, tmp_path):
        """Two processes writing the same job id concurrently: the
        surviving record is one of the complete writes, not a blend."""
        context = multiprocessing.get_context("spawn")
        root = str(tmp_path / "store")
        DirectoryJobStore(root)
        done = context.Event()
        writers = [
            context.Process(target=_writer, args=(root, done))
            for _ in range(2)
        ]
        for process in writers:
            process.start()
        for process in writers:
            process.join(timeout=120)
            assert process.exitcode == 0
        store = DirectoryJobStore(root)
        answers = store.load_answers()
        jobs = store.load_jobs()
        assert answers is not None and _verify(answers)
        assert _verify(jobs["job-00000"])

    def test_no_temp_file_debris_after_the_race(self, tmp_path):
        """The tmp+rename protocol cleans up after itself: once writers
        finish, only the canonical files remain."""
        context = multiprocessing.get_context("spawn")
        root = tmp_path / "store"
        DirectoryJobStore(root)
        done = context.Event()
        writer = context.Process(target=_writer, args=(str(root), done))
        writer.start()
        writer.join(timeout=120)
        assert writer.exitcode == 0
        leftovers = [name for name in os.listdir(root) if ".tmp" in name]
        assert leftovers == []

    def test_in_process_interleaved_store_and_load(self, tmp_path):
        """Same contract single-process: every load between writes is a
        complete snapshot (fast sanity guard for the atomic writer)."""
        store = DirectoryJobStore(tmp_path / "solo")
        for nonce in range(25):
            store.save_answers(_payload(nonce))
            loaded = store.load_answers()
            assert loaded["nonce"] == nonce and _verify(loaded)


if __name__ == "__main__":  # pragma: no cover - debugging aid
    pytest.main([__file__, "-v"])
