"""Unit tests for the §6.4 downstream disparity experiments.

The full protocol runs in the Figure 6 bench; here we exercise the
machinery at reduced scale and check the qualitative invariants.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.corpora import mrl_eye_pool
from repro.data.groups import group
from repro.data.images import attach_images
from repro.data.schema import Schema
from repro.data.synthetic import intersectional_dataset
from repro.downstream.experiments import (
    DisparityCurve,
    DisparityPoint,
    run_disparity_experiment,
)
from repro.errors import InvalidParameterError


@pytest.fixture(scope="module")
def small_pool():
    rng = np.random.default_rng(0)
    schema = Schema.from_dict(
        {"eye_state": ["open", "closed"], "spectacled": ["no", "yes"]}
    )
    dataset = intersectional_dataset(
        schema,
        {
            ("open", "no"): 1500,
            ("closed", "no"): 1400,
            ("open", "yes"): 400,
            ("closed", "yes"): 400,
        },
        rng=rng,
    )
    return attach_images(dataset, rng)


class TestRunDisparityExperiment:
    def test_base_disparity_and_recovery(self, small_pool):
        rng = np.random.default_rng(7)
        curve = run_disparity_experiment(
            small_pool,
            target_attribute="eye_state",
            uncovered_group=group(spectacled="yes"),
            additions=(0, 100),
            n_repeats=2,
            rng=rng,
            uncovered_test_size=200,
        )
        first, last = curve.points
        assert first.n_added == 0 and last.n_added == 100
        # Excluded group suffers; re-adding 100/class recovers most of it.
        assert first.accuracy_disparity > 0.02
        assert last.accuracy_disparity < first.accuracy_disparity
        assert curve.is_monotonically_improving()

    def test_point_metrics_are_consistent(self, small_pool):
        rng = np.random.default_rng(8)
        curve = run_disparity_experiment(
            small_pool,
            target_attribute="eye_state",
            uncovered_group=group(spectacled="yes"),
            additions=(0,),
            n_repeats=1,
            rng=rng,
            uncovered_test_size=200,
        )
        point = curve.points[0]
        assert point.accuracy_disparity == pytest.approx(
            point.random_test_accuracy - point.uncovered_test_accuracy
        )

    def test_requires_features(self, rng):
        schema = Schema.from_dict({"a": ["x", "y"], "b": ["p", "q"]})
        bare = intersectional_dataset(schema, {("x", "p"): 10, ("y", "q"): 10}, rng=rng)
        with pytest.raises(InvalidParameterError):
            run_disparity_experiment(
                bare, target_attribute="a", uncovered_group=group(b="q"), rng=rng
            )

    def test_requires_both_populations(self, rng):
        schema = Schema.from_dict(
            {"eye_state": ["open", "closed"], "spectacled": ["no", "yes"]}
        )
        # A pool with no spectacled subjects at all: nothing to hold out.
        covered_only = attach_images(
            intersectional_dataset(
                schema, {("open", "no"): 50, ("closed", "no"): 50}, rng=rng
            ),
            rng,
        )
        with pytest.raises(InvalidParameterError):
            run_disparity_experiment(
                covered_only,
                target_attribute="eye_state",
                uncovered_group=group(spectacled="yes"),
                rng=rng,
                additions=(0,),
                n_repeats=1,
            )

    def test_invalid_parameters(self, small_pool):
        rng = np.random.default_rng(10)
        with pytest.raises(InvalidParameterError):
            run_disparity_experiment(
                small_pool, target_attribute="eye_state",
                uncovered_group=group(spectacled="yes"), rng=rng, n_repeats=0,
            )
        with pytest.raises(InvalidParameterError):
            run_disparity_experiment(
                small_pool, target_attribute="eye_state",
                uncovered_group=group(spectacled="yes"), rng=rng, additions=(),
            )


class TestDisparityCurve:
    def _curve(self, disparities):
        return DisparityCurve(
            experiment="test",
            points=tuple(
                DisparityPoint(
                    n_added=i * 20,
                    accuracy_disparity=d,
                    loss_disparity=d,
                    random_test_accuracy=0.95,
                    uncovered_test_accuracy=0.95 - d,
                )
                for i, d in enumerate(disparities)
            ),
        )

    def test_accessors(self):
        curve = self._curve([0.1, 0.05, 0.01])
        assert curve.n_added_values == (0, 20, 40)
        assert curve.accuracy_disparities == (0.1, 0.05, 0.01)
        assert curve.is_monotonically_improving()

    def test_non_improving_detected(self):
        curve = self._curve([0.01, 0.05, 0.2])
        assert not curve.is_monotonically_improving()

    def test_describe_renders_all_points(self):
        text = self._curve([0.1, 0.05]).describe()
        assert "0.1000" in text and "0.0500" in text


def test_mrl_pool_smoke(rng):
    """End-to-end tiny run on the real corpus builder."""
    pool = mrl_eye_pool(rng, n_spectacled_pool=600)
    curve = run_disparity_experiment(
        pool,
        target_attribute="eye_state",
        uncovered_group=group(spectacled="yes"),
        additions=(0,),
        n_repeats=1,
        rng=rng,
        max_train_size=1200,
        uncovered_test_size=150,
    )
    point = curve.points[0]
    # Tiny training budget: only sanity-check the pipeline, not quality.
    assert 0.0 <= point.uncovered_test_accuracy <= 1.0
    assert point.random_test_accuracy > 0.7  # in-distribution still learns
    assert point.accuracy_disparity > 0.0  # uncovered group suffers
