"""Property-based tests for the extension modules (search, cost, resolve)."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.cost_aware import choose_set_size, dollar_cost_upper_bound
from repro.core.resolution import find_members
from repro.crowd.oracle import GroundTruthOracle
from repro.crowd.pricing import SizeDependentPricing
from repro.data.dataset import LabeledDataset
from repro.data.groups import group
from repro.data.schema import Schema
from repro.data.synthetic import intersectional_dataset
from repro.patterns.graph import PatternGraph
from repro.patterns.search import find_mups_levelwise
from repro.patterns.tabular import assess_tabular_coverage

FEMALE = group(gender="female")
GENDER_SCHEMA = Schema.from_dict({"gender": ["male", "female"]})


@st.composite
def schema_and_counts(draw):
    n_attributes = draw(st.integers(min_value=1, max_value=3))
    cards = [draw(st.integers(min_value=2, max_value=3)) for _ in range(n_attributes)]
    schema = Schema.from_dict(
        {f"a{i}": [f"v{i}_{j}" for j in range(card)] for i, card in enumerate(cards)}
    )
    graph = PatternGraph(schema)
    counts = {
        tuple(leaf.values): draw(st.integers(min_value=0, max_value=120))
        for leaf in graph.leaves()
    }
    tau = draw(st.integers(min_value=1, max_value=80))
    return schema, counts, tau


@settings(max_examples=50, deadline=None)
@given(schema_and_counts())
def test_levelwise_search_equals_exhaustive_reference(case):
    """For any composition, the pruned search and the exhaustive reference
    agree on the MUP set, and the search never counts more patterns than
    the graph holds."""
    schema, counts, tau = case
    dataset = intersectional_dataset(schema, counts, shuffle=False)
    graph = PatternGraph(schema)
    result = find_mups_levelwise(dataset, tau, graph=graph)
    reference = assess_tabular_coverage(dataset, tau, graph=graph)
    assert set(result.mups) == set(reference.mups)
    assert result.n_patterns_counted <= graph.n_patterns
    # Every counted value is the true count.
    for pattern, count in result.counts.items():
        assert count == reference.verdict(pattern).count_lower_bound


@settings(max_examples=60, deadline=None)
@given(
    N=st.integers(min_value=1, max_value=1_000_000),
    tau=st.integers(min_value=0, max_value=200),
    base=st.floats(min_value=0.0, max_value=1.0),
    slope=st.floats(min_value=0.0, max_value=0.5),
)
def test_choose_set_size_is_argmin_of_the_bound(N, tau, base, slope):
    pricing = SizeDependentPricing(base_price=base, per_image=slope)
    chosen = choose_set_size(N, tau, pricing)
    chosen_cost = dollar_cost_upper_bound(N, chosen, tau, pricing)
    for candidate in (1, 2, 5, 10, 20, 30, 50, 75, 100, 150, 200, 300, 400):
        assert chosen_cost <= dollar_cost_upper_bound(N, candidate, tau, pricing) + 1e-9


@settings(max_examples=40, deadline=None)
@given(
    members=st.lists(st.booleans(), min_size=1, max_size=120),
    k=st.integers(min_value=0, max_value=30),
    n=st.integers(min_value=1, max_value=32),
    strategy=st.sampled_from(["auto", "search", "scan"]),
)
def test_find_members_soundness_and_completeness(members, k, n, strategy):
    """Whatever the strategy: only true members are returned, up to k of
    them, and all of them when the pool holds fewer than k."""
    codes = np.array(members, dtype=np.int16).reshape(-1, 1)
    pool = LabeledDataset(GENDER_SCHEMA, codes)
    found, usage = find_members(
        GroundTruthOracle(pool), FEMALE, k, pool_size=len(pool), n=n,
        strategy=strategy, rng=np.random.default_rng(0),
    )
    true_members = {i for i, m in enumerate(members) if m}
    assert set(found) <= true_members
    assert len(found) == len(set(found))  # no duplicates
    assert len(found) == min(k, len(true_members))
    if k:
        assert usage.total >= 0
