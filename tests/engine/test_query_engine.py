"""Unit tests for the batched query-execution engine."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.group_coverage import GroupCoverageStepper, group_coverage
from repro.crowd.oracle import GroundTruthOracle
from repro.data.groups import group
from repro.data.synthetic import binary_dataset
from repro.engine import AnswerCache, QueryEngine
from repro.errors import InvalidParameterError

FEMALE = group(gender="female")


@pytest.fixture(scope="module")
def dataset():
    return binary_dataset(2000, 30, rng=np.random.default_rng(7))


def fresh_engine(dataset, **kwargs):
    oracle = GroundTruthOracle(dataset)
    return oracle, QueryEngine(oracle, **kwargs)


def make_stepper(dataset, tau=50, n=50):
    return GroupCoverageStepper(
        FEMALE, tau, n=n, view=np.arange(len(dataset), dtype=np.int64)
    )


class TestConstruction:
    def test_batch_size_must_be_positive(self, dataset):
        oracle = GroundTruthOracle(dataset)
        with pytest.raises(InvalidParameterError):
            QueryEngine(oracle, batch_size=0)

    def test_engine_must_wrap_the_same_oracle(self, dataset):
        oracle = GroundTruthOracle(dataset)
        other = GroundTruthOracle(dataset)
        with pytest.raises(InvalidParameterError):
            group_coverage(
                oracle, FEMALE, 5, dataset_size=len(dataset),
                engine=QueryEngine(other),
            )


class TestBatching:
    def test_round_trips_bounded_by_batches_not_queries(self, dataset):
        oracle, engine = fresh_engine(dataset, batch_size=1000)
        stepper = make_stepper(dataset)
        engine.run([stepper])
        assert stepper.done
        assert oracle.ledger.n_rounds == engine.scheduler_rounds
        assert oracle.ledger.n_rounds < oracle.ledger.n_set_queries

    def test_batch_size_one_degenerates_to_one_query_per_round_trip(self, dataset):
        oracle, engine = fresh_engine(dataset, batch_size=1)
        engine.run([make_stepper(dataset)])
        assert oracle.ledger.n_rounds == oracle.ledger.n_set_queries

    def test_uncovered_run_dispatches_exactly_the_sequential_queries(self, dataset):
        sequential = GroundTruthOracle(dataset)
        reference = group_coverage(sequential, FEMALE, 50, dataset_size=len(dataset))
        assert not reference.covered
        oracle, engine = fresh_engine(dataset, batch_size=16)
        engine.run([make_stepper(dataset)])
        assert oracle.ledger.n_set_queries == reference.tasks.n_set_queries


class TestDedupAcrossRuns:
    def test_identical_concurrent_runs_pay_once(self, dataset):
        oracle, engine = fresh_engine(dataset, batch_size=32)
        first, second = make_stepper(dataset), make_stepper(dataset)
        engine.run([first, second])
        solo = GroundTruthOracle(dataset)
        reference = group_coverage(solo, FEMALE, 50, dataset_size=len(dataset))
        assert (first.covered, first.count) == (second.covered, second.count)
        assert (first.covered, first.count) == (reference.covered, reference.count)
        # Every query the second run wanted was already in flight for the
        # first: one oracle task per distinct question.
        assert oracle.ledger.n_set_queries == reference.tasks.n_set_queries
        assert engine.deduped_queries == reference.tasks.n_set_queries

    def test_cache_hits_across_sequential_reruns(self, dataset):
        oracle, engine = fresh_engine(dataset, batch_size=32)
        engine.run([make_stepper(dataset)])
        dispatched_first = engine.dispatched_queries
        tasks_after_first = oracle.ledger.n_set_queries
        engine.run([make_stepper(dataset)])
        # The rerun is answered fully from the cache: no new oracle tasks.
        assert oracle.ledger.n_set_queries == tasks_after_first
        assert engine.dispatched_queries == dispatched_first
        assert engine.cache.hits >= dispatched_first


class TestCacheAccounting:
    def test_misses_equal_dispatches_on_cold_cache(self, dataset):
        _, engine = fresh_engine(dataset, batch_size=32)
        engine.run([make_stepper(dataset)])
        assert engine.cache.misses == engine.dispatched_queries
        assert engine.cache.hits == 0

    def test_stats_since_snapshot_isolates_one_run(self, dataset):
        oracle, engine = fresh_engine(dataset, batch_size=32)
        engine.run([make_stepper(dataset)])
        snapshot = engine.snapshot()
        engine.run([make_stepper(dataset)])
        stats = engine.stats_since(snapshot)
        assert stats.dispatched_queries == 0
        assert stats.cache_misses == 0
        assert stats.cache_hits > 0
        assert stats.oracle_round_trips == 0

    def test_shared_cache_across_engines(self, dataset):
        cache = AnswerCache()
        oracle_a = GroundTruthOracle(dataset)
        QueryEngine(oracle_a, cache=cache).run([make_stepper(dataset)])
        oracle_b = GroundTruthOracle(dataset)
        QueryEngine(oracle_b, cache=cache).run([make_stepper(dataset)])
        assert oracle_b.ledger.n_set_queries == 0

    def test_shared_cache_across_datasets_rejected(self, dataset):
        cache = AnswerCache()
        QueryEngine(GroundTruthOracle(dataset), cache=cache)
        other = binary_dataset(100, 5, rng=np.random.default_rng(1))
        with pytest.raises(InvalidParameterError):
            QueryEngine(GroundTruthOracle(other), cache=cache)


class TestCompletionHooks:
    def test_on_complete_can_spawn_follow_up_steppers(self, dataset):
        oracle, engine = fresh_engine(dataset, batch_size=32)
        spawned = []

        def on_complete(stepper):
            if not spawned:
                follow_up = make_stepper(dataset, tau=10)
                spawned.append(follow_up)
                return [follow_up]
            return None

        engine.run([make_stepper(dataset)], on_complete=on_complete)
        assert spawned and spawned[0].done

    def test_born_done_stepper_completes_without_queries(self, dataset):
        oracle, engine = fresh_engine(dataset)
        stepper = make_stepper(dataset, tau=0)
        finished = []
        engine.run([stepper], on_complete=finished.append)
        assert finished == [stepper]
        assert oracle.ledger.n_set_queries == 0


class TestStepperContract:
    def test_feeding_an_unrequested_answer_raises(self, dataset):
        stepper = make_stepper(dataset)
        with pytest.raises(InvalidParameterError):
            stepper.feed({(FEMALE, b"bogus"): True})

    def test_result_before_done_raises(self, dataset):
        stepper = make_stepper(dataset)
        with pytest.raises(InvalidParameterError):
            stepper.result()

    def test_pending_limit_one_returns_the_fifo_front(self, dataset):
        stepper = make_stepper(dataset)
        front = stepper.pending(limit=1)
        assert len(front) == 1
        # The front is now in flight: a second scan skips it rather than
        # re-emitting (a driver would double-pay the oracle otherwise).
        assert front[0].key not in {r.key for r in stepper.pending()}

    def test_partial_feed_does_not_reemit_in_flight_queries(self, dataset):
        oracle = GroundTruthOracle(dataset)
        stepper = make_stepper(dataset, tau=5)
        first_round = stepper.pending()
        assert len(first_round) > 1
        answered = first_round[0]
        stepper.feed({answered.key: oracle.ask_set(answered.indices, FEMALE)})
        emitted = {request.key for request in stepper.pending()}
        for still_waiting in first_round[1:]:
            assert still_waiting.key not in emitted

    def test_pending_capped_by_certification_deficit(self, dataset):
        stepper = make_stepper(dataset, tau=3)
        assert len(stepper.pending()) == 3

    def test_speculation_widens_the_frontier(self, dataset):
        stepper = GroupCoverageStepper(
            FEMALE, 1, n=50,
            view=np.arange(len(dataset), dtype=np.int64),
            speculation=16,
        )
        assert len(stepper.pending()) == 17  # deficit 1 + speculation 16

    def test_negative_speculation_rejected(self, dataset):
        with pytest.raises(InvalidParameterError):
            GroupCoverageStepper(
                FEMALE, 1, view=np.arange(10, dtype=np.int64), speculation=-1
            )

    def test_stepper_rejects_negative_view_indices(self):
        with pytest.raises(InvalidParameterError):
            GroupCoverageStepper(FEMALE, 1, view=np.array([0, -1, 2]))


class TestSpeculationEconomics:
    def test_small_tau_uncovered_still_batches(self):
        # The degenerate case for a naive deficit-only cap: tau=1 over a
        # memberless group forces ~N/n root queries; engine mode must
        # still batch them (at zero task overhead, since every query is
        # needed).
        dataset = binary_dataset(10_000, 0, rng=np.random.default_rng(0))
        sequential = GroundTruthOracle(dataset)
        reference = group_coverage(sequential, FEMALE, 1, dataset_size=len(dataset))
        oracle = GroundTruthOracle(dataset)
        result = group_coverage(
            oracle, FEMALE, 1, dataset_size=len(dataset),
            engine=QueryEngine(oracle, batch_size=64),
        )
        assert result.tasks.n_set_queries == reference.tasks.n_set_queries
        assert result.tasks.n_rounds * 10 < reference.tasks.n_rounds

    @pytest.mark.parametrize("batch_size", [1, 8, 32])
    def test_covered_run_waste_bounded_by_batch_size(self, batch_size):
        dataset = binary_dataset(3000, 170, rng=np.random.default_rng(3))
        for tau in (1, 10, 100):
            sequential = GroundTruthOracle(dataset)
            reference = group_coverage(sequential, FEMALE, tau, dataset_size=len(dataset))
            assert reference.covered
            oracle = GroundTruthOracle(dataset)
            result = group_coverage(
                oracle, FEMALE, tau, dataset_size=len(dataset),
                engine=QueryEngine(oracle, batch_size=batch_size),
            )
            waste = result.tasks.n_set_queries - reference.tasks.n_set_queries
            assert 0 <= waste <= batch_size
