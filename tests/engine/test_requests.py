"""IndexKey: interned contiguous-run query keys."""

from __future__ import annotations

import numpy as np

from repro.data.groups import group
from repro.engine import IndexKey, SetRequest, set_query_key

FEMALE = group(gender="female")


class TestIndexKey:
    def test_runs_are_interned(self):
        a = IndexKey.of(np.arange(10, 20))
        b = IndexKey.of(np.arange(10, 20))
        assert a is b
        assert a.is_run and a.start == 10 and a.stop == 20
        assert a.n_objects == 10

    def test_of_run_matches_of(self):
        assert IndexKey.of_run(5, 9) is IndexKey.of(np.arange(5, 9))

    def test_scattered_arrays_are_interned_by_content(self):
        a = IndexKey.of(np.array([3, 1, 7]))
        b = IndexKey.of(np.array([3, 1, 7]))
        assert a is b
        assert not a.is_run
        assert a.n_objects == 3

    def test_distinct_content_distinct_keys(self):
        assert IndexKey.of(np.array([0, 1, 2])) != IndexKey.of(np.array([0, 2, 1]))
        assert IndexKey.of(np.arange(3)) != IndexKey.of(np.arange(4))
        # Same endpoints and length as the run [0, 4) but different
        # content must not collide with it.
        assert IndexKey.of(np.array([0, 0, 3, 3])) != IndexKey.of(np.arange(0, 4))

    def test_to_array_round_trips(self):
        for array in (np.arange(7, 19), np.array([5, 2, 9]), np.array([], dtype=np.int64)):
            key = IndexKey.of(array)
            assert np.array_equal(key.to_array(), array)
            assert IndexKey.of(key.to_array()) == key

    def test_empty_is_not_a_run(self):
        key = IndexKey.of(np.array([], dtype=np.int64))
        assert not key.is_run
        assert key.n_objects == 0
        assert IndexKey.of_run(5, 5) == key

    def test_hash_is_cached_and_content_based(self):
        key = IndexKey.of(np.arange(2, 6))
        rebuilt = IndexKey(2, 6, None, hash((2, 6)))  # bypass interning
        assert key == rebuilt and hash(key) == hash(rebuilt)


class TestSetRequest:
    def test_key_matches_set_query_key(self):
        indices = np.arange(4, 9)
        request = SetRequest(indices, FEMALE)
        assert request.key == set_query_key(indices, FEMALE)
        assert request.key[1].is_run

    def test_precomputed_index_key_is_trusted(self):
        indices = np.arange(4, 9)
        request = SetRequest(indices, FEMALE, index_key=IndexKey.of_run(4, 9))
        assert request.key == set_query_key(indices, FEMALE)

    def test_dtype_normalization(self):
        request = SetRequest(np.array([1, 2, 3], dtype=np.int32), FEMALE)
        assert request.indices.dtype == np.int64
        assert request.key[1] is IndexKey.of(np.arange(1, 4))
