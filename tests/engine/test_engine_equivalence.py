"""Sequential vs. engine-mode equivalence on randomized datasets.

The engine batches and caches but must not change what the algorithms
conclude: same ``covered`` verdict, same ``cnt``, same isolated members
under a deterministic oracle (answers are applied in the sequential FIFO
order regardless of batching).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.group_coverage import group_coverage
from repro.core.intersectional_coverage import intersectional_coverage
from repro.core.multiple_coverage import multiple_coverage
from repro.crowd.oracle import GroundTruthOracle
from repro.data.groups import group
from repro.data.schema import Schema
from repro.data.synthetic import binary_dataset, intersectional_dataset, single_attribute_dataset
from repro.engine import QueryEngine

FEMALE = group(gender="female")


class TestGroupCoverageEquivalence:
    @pytest.mark.parametrize("seed", range(6))
    @pytest.mark.parametrize("tau", [1, 20, 75])
    def test_randomized_verdict_count_and_members(self, seed, tau):
        rng = np.random.default_rng(seed)
        dataset = binary_dataset(1500, int(rng.integers(0, 120)), rng=rng)
        sequential_oracle = GroundTruthOracle(dataset)
        sequential = group_coverage(
            sequential_oracle, FEMALE, tau, n=23, dataset_size=len(dataset)
        )
        engine_oracle = GroundTruthOracle(dataset)
        batched = group_coverage(
            engine_oracle, FEMALE, tau, n=23, dataset_size=len(dataset),
            engine=QueryEngine(engine_oracle, batch_size=16),
        )
        assert batched.covered == sequential.covered
        assert batched.count == sequential.count
        assert batched.discovered_indices == sequential.discovered_indices
        # A covered run may speculate up to one batch past the stop (e.g.
        # tau=1 satisfied by the very first query), costing at most one
        # extra round-trip; uncovered runs never exceed sequential.
        assert batched.tasks.n_rounds <= sequential.tasks.n_rounds + 1
        assert (
            batched.tasks.n_set_queries
            <= sequential.tasks.n_set_queries + 16  # the engine's batch_size
        )
        if not sequential.covered:
            # No early stop, so no speculation waste: identical task bill.
            assert batched.tasks.n_set_queries == sequential.tasks.n_set_queries
            assert batched.tasks.n_rounds <= sequential.tasks.n_rounds

    def test_engine_run_attaches_stats(self):
        dataset = binary_dataset(500, 10, rng=np.random.default_rng(0))
        oracle = GroundTruthOracle(dataset)
        result = group_coverage(
            oracle, FEMALE, 20, dataset_size=len(dataset),
            engine=QueryEngine(oracle),
        )
        assert result.engine_stats is not None
        assert result.engine_stats.dispatched_queries == result.tasks.n_set_queries
        sequential = group_coverage(
            GroundTruthOracle(dataset), FEMALE, 20, dataset_size=len(dataset)
        )
        assert sequential.engine_stats is None


class TestMultipleCoverageEquivalence:
    @pytest.mark.parametrize("seed", range(4))
    def test_randomized_entries_match(self, seed):
        rng = np.random.default_rng(seed)
        counts = {f"v{i}": int(rng.integers(1, 250)) for i in range(5)}
        dataset = single_attribute_dataset(counts, rng=rng)
        groups = [group(race=value) for value in counts]
        sequential = multiple_coverage(
            GroundTruthOracle(dataset), groups, 40, n=30,
            rng=np.random.default_rng(seed + 1000), dataset_size=len(dataset),
        )
        engine_oracle = GroundTruthOracle(dataset)
        batched = multiple_coverage(
            engine_oracle, groups, 40, n=30,
            rng=np.random.default_rng(seed + 1000), dataset_size=len(dataset),
            engine=QueryEngine(engine_oracle, batch_size=16),
        )
        for ours, theirs in zip(batched.entries, sequential.entries):
            assert ours.group == theirs.group
            assert ours.covered == theirs.covered
            assert ours.count == theirs.count
            assert ours.count_is_exact == theirs.count_is_exact
        assert batched.super_groups == sequential.super_groups
        assert batched.tasks.n_rounds < sequential.tasks.n_rounds
        # Task overhead is bounded by one speculation budget per
        # Group-Coverage run (at most one run per group plus one per
        # penalty-path member).
        assert batched.tasks.total <= sequential.tasks.total + 2 * len(groups) * 16

    @pytest.mark.parametrize("seed", range(4))
    def test_zero_speculation_never_costs_extra_tasks(self, seed):
        rng = np.random.default_rng(seed)
        counts = {f"v{i}": int(rng.integers(1, 250)) for i in range(5)}
        dataset = single_attribute_dataset(counts, rng=rng)
        groups = [group(race=value) for value in counts]
        sequential = multiple_coverage(
            GroundTruthOracle(dataset), groups, 40, n=30,
            rng=np.random.default_rng(seed + 1000), dataset_size=len(dataset),
        )
        engine_oracle = GroundTruthOracle(dataset)
        batched = multiple_coverage(
            engine_oracle, groups, 40, n=30,
            rng=np.random.default_rng(seed + 1000), dataset_size=len(dataset),
            engine=QueryEngine(engine_oracle, batch_size=16, speculation=0),
        )
        for ours, theirs in zip(batched.entries, sequential.entries):
            assert (ours.covered, ours.count) == (theirs.covered, theirs.count)
        assert batched.tasks.total <= sequential.tasks.total
        assert batched.tasks.n_rounds < sequential.tasks.n_rounds

    def test_penalty_path_reuses_supergroup_pruning(self):
        # Six groups of 100 in a 20k dataset with tau=40: the sampled
        # estimates merge them, the merged super-group is covered, and the
        # per-member penalty re-runs hit the implied-negative cache.
        counts = {"maj": 20000 - 600, **{f"m{i}": 100 for i in range(6)}}
        dataset = single_attribute_dataset(counts, rng=np.random.default_rng(0))
        groups = [group(race=value) for value in counts]
        sequential = multiple_coverage(
            GroundTruthOracle(dataset), groups, 40,
            rng=np.random.default_rng(9), dataset_size=len(dataset),
        )
        engine_oracle = GroundTruthOracle(dataset)
        # speculation=0 isolates the cache effect: any task saving below
        # comes purely from implied-negative replay, not batching luck.
        engine = QueryEngine(engine_oracle, batch_size=32, speculation=0)
        batched = multiple_coverage(
            engine_oracle, groups, 40,
            rng=np.random.default_rng(9), dataset_size=len(dataset),
            engine=engine,
        )
        assert any(len(sg) > 1 for sg in batched.super_groups)
        for ours, theirs in zip(batched.entries, sequential.entries):
            assert (ours.covered, ours.count) == (theirs.covered, theirs.count)
        assert batched.engine_stats.cache_hits > 0
        assert batched.tasks.total < sequential.tasks.total


class TestIntersectionalCoverageEquivalence:
    def test_same_mups_and_leaf_verdicts(self):
        schema = Schema.from_dict(
            {"gender": ["male", "female"], "race": ["white", "black"]}
        )
        dataset = intersectional_dataset(
            schema,
            {("male", "white"): 500, ("female", "white"): 120,
             ("male", "black"): 80, ("female", "black"): 4},
            rng=np.random.default_rng(5),
        )
        sequential = intersectional_coverage(
            GroundTruthOracle(dataset), schema, 50,
            rng=np.random.default_rng(6), dataset_size=len(dataset),
        )
        engine_oracle = GroundTruthOracle(dataset)
        batched = intersectional_coverage(
            engine_oracle, schema, 50,
            rng=np.random.default_rng(6), dataset_size=len(dataset),
            engine=QueryEngine(engine_oracle, batch_size=16),
        )
        assert [m.describe() for m in batched.mups] == [
            m.describe() for m in sequential.mups
        ]
        for ours, theirs in zip(
            batched.leaf_report.entries, sequential.leaf_report.entries
        ):
            assert (ours.covered, ours.count) == (theirs.covered, theirs.count)
        assert batched.tasks.n_rounds < sequential.tasks.n_rounds
        assert batched.engine_stats is not None
