"""Unit tests for the range-keyed answer cache."""

from __future__ import annotations

import threading

import numpy as np

from repro.data.groups import SuperGroup, group
from repro.engine import AnswerCache, set_query_key

FEMALE = group(gender="female")
MALE = group(gender="male")


def key(indices, predicate=FEMALE):
    return set_query_key(np.asarray(indices, dtype=np.int64), predicate)


class TestHitMissAccounting:
    def test_miss_then_hit(self):
        cache = AnswerCache()
        assert cache.lookup(key([1, 2, 3])) is None
        assert (cache.hits, cache.misses) == (0, 1)
        cache.store(key([1, 2, 3]), True)
        assert cache.lookup(key([1, 2, 3])) is True
        assert (cache.hits, cache.misses) == (1, 1)
        assert cache.hit_rate == 0.5

    def test_false_answers_are_hits_not_misses(self):
        cache = AnswerCache()
        cache.store(key([7]), False)
        assert cache.lookup(key([7])) is False
        assert (cache.hits, cache.misses) == (1, 0)

    def test_same_indices_different_predicate_do_not_collide(self):
        cache = AnswerCache()
        cache.store(key([1, 2], FEMALE), True)
        assert cache.lookup(key([1, 2], MALE)) is None

    def test_same_content_different_container_collides(self):
        cache = AnswerCache()
        cache.store(key(np.arange(5)), True)
        assert cache.lookup(key([0, 1, 2, 3, 4])) is True

    def test_hit_rate_empty(self):
        assert AnswerCache().hit_rate == 0.0

    def test_len_and_contains(self):
        cache = AnswerCache()
        cache.store(key([1]), True)
        assert len(cache) == 1
        assert key([1]) in cache
        assert key([2]) not in cache

    def test_clear_keeps_counters_and_implications(self):
        cache = AnswerCache()
        cache.store(key([1]), True)
        cache.lookup(key([1]))
        cache.clear()
        assert len(cache) == 0
        assert cache.hits == 1


class TestImplications:
    def test_negative_supergroup_answer_implies_member_answers(self):
        a, b = group(race="a"), group(race="b")
        sg = SuperGroup([a, b])
        cache = AnswerCache()
        cache.register_implication(sg, sg.members)
        cache.store(key([3, 4, 5], sg), False)
        assert cache.lookup(key([3, 4, 5], a)) is False
        assert cache.lookup(key([3, 4, 5], b)) is False

    def test_positive_supergroup_answer_implies_nothing(self):
        a, b = group(race="a"), group(race="b")
        sg = SuperGroup([a, b])
        cache = AnswerCache()
        cache.register_implication(sg, sg.members)
        cache.store(key([3, 4, 5], sg), True)
        assert cache.lookup(key([3, 4, 5], a)) is None
        assert cache.lookup(key([3, 4, 5], b)) is None

    def test_implied_answer_never_overwrites_direct_answer(self):
        a, b = group(race="a"), group(race="b")
        sg = SuperGroup([a, b])
        cache = AnswerCache()
        cache.register_implication(sg, sg.members)
        cache.store(key([1], a), True)
        cache.store(key([1], sg), False)  # contradictory (noisy oracle)
        assert cache.lookup(key([1], a)) is True

    def test_implication_only_applies_to_the_same_range(self):
        a, b = group(race="a"), group(race="b")
        sg = SuperGroup([a, b])
        cache = AnswerCache()
        cache.register_implication(sg, sg.members)
        cache.store(key([1, 2], sg), False)
        assert cache.lookup(key([1, 2, 3], a)) is None


class TestCounterThreadSafety:
    def test_hit_miss_counters_exact_under_concurrent_lookups(self):
        """A cache shared through a threaded backend takes lookups from
        many threads at once; ``hits``/``misses`` are read-modify-write
        increments, so without ``_stats_lock`` this stress loses counts.
        Exactness (not just plausibility) is the assertion: every thread
        performs a known mix of hits and misses."""
        n_threads, rounds = 8, 200
        cache = AnswerCache()
        present = [key([i]) for i in range(50)]
        absent = [key([i + 10_000]) for i in range(50)]
        for k in present:
            cache.store(k, True)
        barrier = threading.Barrier(n_threads)

        def hammer(seed: int) -> None:
            rng = np.random.default_rng(seed)
            barrier.wait()
            for _ in range(rounds):
                assert cache.lookup(present[int(rng.integers(50))]) is True
                assert cache.lookup(absent[int(rng.integers(50))]) is None

        threads = [
            threading.Thread(target=hammer, args=(t,)) for t in range(n_threads)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert cache.hits == n_threads * rounds
        assert cache.misses == n_threads * rounds
        assert cache.hit_rate == 0.5
