"""The non-blocking engine core: admit / pump / absorb / retire."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.group_coverage import GroupCoverageStepper
from repro.crowd.backends import InlineBackend, LatencyModelBackend
from repro.crowd.oracle import GroundTruthOracle
from repro.data.groups import group
from repro.data.synthetic import binary_dataset
from repro.engine import QueryEngine
from repro.errors import InvalidParameterError

FEMALE = group(gender="female")
MALE = group(gender="male")


@pytest.fixture(scope="module")
def dataset():
    return binary_dataset(2000, 30, rng=np.random.default_rng(7))


def make_stepper(dataset, predicate=FEMALE, tau=50, **kwargs):
    return GroupCoverageStepper(
        predicate, tau, view=np.arange(len(dataset), dtype=np.int64), **kwargs
    )


def drain(engine):
    """Pump/absorb until the engine has no work — a hand-rolled run()."""
    while engine.has_work:
        engine.pump()
        while engine.outstanding_tickets:
            ticket = engine.backend.next_done()
            engine.absorb(ticket, engine.backend.gather(ticket))
    engine.settle()


class TestPumpAbsorb:
    def test_manual_drain_matches_run(self, dataset):
        reference_oracle = GroundTruthOracle(dataset)
        reference_engine = QueryEngine(reference_oracle, batch_size=16)
        reference = make_stepper(dataset)
        reference_engine.run([reference])

        oracle = GroundTruthOracle(dataset)
        engine = QueryEngine(oracle, batch_size=16)
        stepper = make_stepper(dataset)
        flow = engine.admit(stepper)
        drain(engine)
        assert flow.finished
        assert (stepper.covered, stepper.count) == (
            reference.covered, reference.count,
        )
        assert oracle.ledger.total == reference_oracle.ledger.total
        assert flow.dispatched == oracle.ledger.n_set_queries

    def test_pump_returns_tickets_absorb_feeds_them(self, dataset):
        engine = QueryEngine(GroundTruthOracle(dataset), batch_size=8)
        stepper = make_stepper(dataset, tau=5)
        engine.admit(stepper)
        tickets = engine.pump()
        assert tickets and engine.outstanding_tickets == len(tickets)
        for ticket in tickets:
            engine.absorb(ticket, engine.backend.gather(ticket))
        assert engine.outstanding_tickets == 0
        assert stepper.count > 0 or stepper.done

    def test_absorb_out_of_submission_order(self, dataset):
        """Answers may come back in any order; verdicts must not care."""
        reference_oracle = GroundTruthOracle(dataset)
        reference = make_stepper(dataset)
        QueryEngine(reference_oracle, batch_size=4).run([reference])

        engine = QueryEngine(GroundTruthOracle(dataset), batch_size=4)
        stepper = make_stepper(dataset)
        engine.admit(stepper)
        while engine.has_work:
            tickets = engine.pump()
            gathered = [(t, engine.backend.gather(t)) for t in tickets]
            for ticket, answers in reversed(gathered):
                engine.absorb(ticket, answers)
        engine.settle()
        assert (stepper.covered, stepper.count) == (
            reference.covered, reference.count,
        )

    def test_partial_absorb_keeps_other_audits_moving(self, dataset):
        """With a latency backend, a flow whose answers arrived advances
        while another flow's batch is still outstanding."""
        oracle = GroundTruthOracle(dataset)
        backend = LatencyModelBackend(oracle, rng=np.random.default_rng(3))
        engine = QueryEngine(backend=backend, batch_size=64)
        female = make_stepper(dataset, FEMALE, tau=10)
        male = make_stepper(dataset, MALE, tau=10)
        engine.admit(female)
        engine.admit(male)
        engine.pump()
        # Absorb only the first completed ticket, then pump again: the
        # fed flow re-arms its frontier without waiting for the rest.
        ticket = backend.next_done()
        engine.absorb(ticket, backend.gather(ticket))
        before = engine.outstanding_tickets
        engine.pump()
        assert engine.outstanding_tickets >= before
        drain(engine)
        assert female.done and male.done

    def test_absorb_unknown_ticket_raises(self, dataset):
        engine = QueryEngine(GroundTruthOracle(dataset))
        other = InlineBackend(GroundTruthOracle(dataset))
        import numpy as _np
        from repro.engine import SetRequest

        foreign = other.submit([SetRequest(_np.arange(5), FEMALE)])
        with pytest.raises(InvalidParameterError):
            engine.absorb(foreign, [True])

    def test_absorb_wrong_answer_count_raises(self, dataset):
        engine = QueryEngine(GroundTruthOracle(dataset), batch_size=4)
        engine.admit(make_stepper(dataset, tau=3))
        (ticket, *_) = engine.pump()
        with pytest.raises(InvalidParameterError):
            engine.absorb(ticket, [True])


class TestRetire:
    def test_retired_flow_stops_consuming_budget(self, dataset):
        oracle = GroundTruthOracle(dataset)
        engine = QueryEngine(oracle, batch_size=8)
        stepper = make_stepper(dataset)
        flow = engine.admit(stepper)
        engine.pump()
        spent = oracle.ledger.total
        engine.retire(flow)
        # Outstanding answers are cached (they were paid for) but the
        # audit is abandoned: no further pumps collect it.
        while engine.outstanding_tickets:
            ticket = engine.backend.next_done()
            engine.absorb(ticket, engine.backend.gather(ticket))
        assert engine.pump() == []
        assert oracle.ledger.total == spent
        assert not stepper.done
        assert len(engine.cache) > 0

    def test_retired_answers_still_serve_other_audits(self, dataset):
        oracle = GroundTruthOracle(dataset)
        engine = QueryEngine(oracle, batch_size=8)
        flow = engine.admit(make_stepper(dataset))
        engine.pump()
        engine.retire(flow)
        while engine.outstanding_tickets:
            ticket = engine.backend.next_done()
            engine.absorb(ticket, engine.backend.gather(ticket))
        spent = oracle.ledger.total
        fresh = make_stepper(dataset)
        engine.run([fresh])
        # The second audit replays the retired flow's prefix for free.
        assert engine.cache.hits >= spent
        assert fresh.done


class TestFlowHandles:
    def test_born_done_flow_finishes_at_admission(self, dataset):
        engine = QueryEngine(GroundTruthOracle(dataset))
        finished = []
        flow = engine.admit(
            make_stepper(dataset, tau=0), on_complete=finished.append
        )
        assert flow.finished
        assert len(finished) == 1

    def test_spawned_flows_recorded_on_the_parent(self, dataset):
        engine = QueryEngine(GroundTruthOracle(dataset), batch_size=32)
        child = make_stepper(dataset, tau=5)

        def on_complete(stepper):
            return [child] if stepper is not child else None

        flow = engine.admit(make_stepper(dataset, tau=2), on_complete=on_complete)
        drain(engine)
        assert flow.finished
        assert [spawn.stepper for spawn in flow.spawned] == [child]
        assert flow.spawned[0].finished
