"""Executable documentation: every fenced ``python`` block must run.

Extracts every ```` ```python ```` block from the documentation set and
executes it in a fresh namespace with the working directory pointed at a
temp dir (so examples that write files — job stores, benchmark output —
stay hermetic). A block opts out by placing ``<!-- no-run -->`` on one
of the three lines above its opening fence (for deliberately illustrative
fragments: API sketches, pseudo-signatures, shell-flavored snippets).

This is the anti-drift gate the docs archetype demands: an example that
references a renamed class or a removed keyword fails CI the moment the
rename lands, instead of rotting silently.
"""

from __future__ import annotations

from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]

#: Documentation files that must exist (the core set a refactor cannot
#: silently delete). The harness itself globs wider, so any *new* page
#: under docs/ is covered automatically.
REQUIRED_DOC_FILES = (
    "README.md",
    "docs/api.md",
    "docs/architecture.md",
    "docs/guide/scaling.md",
    "docs/guide/serving.md",
    "docs/guide/reliability.md",
    "docs/guide/glossary.md",
)

NO_RUN_MARKER = "<!-- no-run -->"


def documentation_files() -> list[str]:
    """README plus every markdown page under docs/, repo-relative."""
    pages = {"README.md"}
    pages.update(
        str(path.relative_to(REPO_ROOT))
        for path in (REPO_ROOT / "docs").rglob("*.md")
    )
    return sorted(pages)


def extract_python_blocks():
    """``(relative_path, first_code_line, source)`` per runnable block."""
    blocks = []
    missing = [
        relative
        for relative in REQUIRED_DOC_FILES
        if not (REPO_ROOT / relative).exists()
    ]
    for relative in documentation_files():
        path = REPO_ROOT / relative
        lines = path.read_text().splitlines()
        in_block = False
        opted_out = False
        start_line = 0
        buffer: list[str] = []
        for i, line in enumerate(lines):
            stripped = line.strip()
            if not in_block and stripped.startswith("```python"):
                in_block = True
                opted_out = any(
                    NO_RUN_MARKER in earlier
                    for earlier in lines[max(0, i - 3): i]
                )
                start_line = i + 2  # 1-based line number of the first code line
                buffer = []
                continue
            if in_block and stripped == "```":
                in_block = False
                if not opted_out:
                    blocks.append((relative, start_line, "\n".join(buffer)))
                continue
            if in_block:
                buffer.append(line)
        if in_block:
            raise AssertionError(f"{relative}: unterminated ```python fence")
    if missing:
        raise AssertionError(f"documentation files missing: {missing}")
    return blocks


_BLOCKS = extract_python_blocks()


def test_documentation_set_is_complete():
    """Every doc file exists and the set contains runnable examples —
    a docs suite whose harness silently matches nothing has drifted."""
    assert len(_BLOCKS) >= 8, (
        f"only {len(_BLOCKS)} runnable python blocks found across "
        f"{documentation_files()}; did a refactor mark everything no-run?"
    )


@pytest.mark.parametrize(
    "relative, lineno, source",
    _BLOCKS,
    ids=[f"{relative}:{lineno}" for relative, lineno, _ in _BLOCKS],
)
def test_doc_example_runs(relative, lineno, source, tmp_path, monkeypatch):
    monkeypatch.chdir(tmp_path)
    namespace: dict = {"__name__": "__doc_example__"}
    code = compile(source, str(REPO_ROOT / relative) + f":{lineno}", "exec")
    exec(code, namespace)  # noqa: S102 - executing our own documentation
