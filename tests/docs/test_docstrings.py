"""The docstring contract, enforced two ways.

1. ``tools/check_docstrings.py`` — every exported name on the blessed
   surface carries an example-bearing docstring, every public method a
   docstring (the same script CI runs as a standalone job).
2. The examples themselves execute as doctests, so a docstring that
   references a renamed argument or prints stale output fails here, not
   in a reader's terminal.
"""

from __future__ import annotations

import doctest
import importlib
import os
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]

#: Modules whose docstring examples must run clean under doctest.
DOCTESTED_MODULES = (
    "repro.audit.specs",
    "repro.audit.report",
    "repro.audit.runners",
    "repro.audit.session",
    "repro.audit.serialization",
    "repro.service.jobs",
    "repro.service.store",
    "repro.service.service",
    "repro.crowd.backends.base",
    "repro.crowd.backends.inline",
    "repro.crowd.backends.latency",
    "repro.crowd.backends.threaded",
    "repro.crowd.oracle",
    "repro.crowd.reliability.online",
    "repro.crowd.reliability.tracker",
    "repro.crowd.reliability.policy",
    "repro.crowd.reliability.serialization",
    "repro.data.dataset",
    "repro.data.kernels",
    "repro.data.membership",
    "repro.data.sharded",
    "repro.serving.protocol",
    "repro.serving.config",
    "repro.serving.board",
    "repro.serving.worker",
    "repro.serving.server",
    "repro.serving.client",
    "repro.serving.pool",
)


def test_docstring_checker_passes():
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = (
        src + os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else src
    )
    completed = subprocess.run(
        [sys.executable, str(REPO_ROOT / "tools" / "check_docstrings.py")],
        capture_output=True,
        text=True,
        cwd=REPO_ROOT,
        env=env,
    )
    assert completed.returncode == 0, completed.stdout + completed.stderr


@pytest.mark.parametrize("module_name", DOCTESTED_MODULES)
def test_docstring_examples_execute(module_name, tmp_path, monkeypatch):
    monkeypatch.chdir(tmp_path)  # examples that write files stay hermetic
    module = importlib.import_module(module_name)
    failures, _ = doctest.testmod(module, verbose=False)
    assert failures == 0, f"{module_name}: {failures} doctest failure(s)"
