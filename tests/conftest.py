"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.schema import Schema


@pytest.fixture
def rng() -> np.random.Generator:
    """A fresh deterministic generator per test."""
    return np.random.default_rng(1234)


@pytest.fixture
def gender_schema() -> Schema:
    return Schema.from_dict({"gender": ["male", "female"]})


@pytest.fixture
def gender_race_schema() -> Schema:
    return Schema.from_dict(
        {
            "gender": ["male", "female"],
            "race": ["white", "black", "hispanic", "asian"],
        }
    )
