"""Unit tests for repro.data.schema."""

from __future__ import annotations

import pytest

from repro.data.schema import Attribute, Schema
from repro.errors import SchemaError, UnknownGroupError


class TestAttribute:
    def test_basic_construction(self):
        attribute = Attribute("gender", ("male", "female"))
        assert attribute.name == "gender"
        assert attribute.cardinality == 2
        assert list(attribute) == ["male", "female"]

    def test_values_are_coerced_to_strings(self):
        attribute = Attribute("age_group", (1, 2, 3))
        assert attribute.values == ("1", "2", "3")

    def test_code_roundtrip(self):
        attribute = Attribute("race", ("white", "black", "asian"))
        for code, value in enumerate(attribute.values):
            assert attribute.code_of(value) == code
            assert attribute.value_of(code) == value

    def test_code_of_unknown_value_raises(self):
        attribute = Attribute("gender", ("male", "female"))
        with pytest.raises(UnknownGroupError):
            attribute.code_of("nonbinary")

    def test_value_of_out_of_range_raises(self):
        attribute = Attribute("gender", ("male", "female"))
        with pytest.raises(UnknownGroupError):
            attribute.value_of(2)
        with pytest.raises(UnknownGroupError):
            attribute.value_of(-1)

    def test_single_value_rejected(self):
        with pytest.raises(SchemaError):
            Attribute("gender", ("male",))

    def test_duplicate_values_rejected(self):
        with pytest.raises(SchemaError):
            Attribute("gender", ("male", "male"))

    def test_empty_name_rejected(self):
        with pytest.raises(SchemaError):
            Attribute("", ("a", "b"))

    def test_is_hashable_and_frozen(self):
        attribute = Attribute("gender", ("male", "female"))
        assert hash(attribute) == hash(Attribute("gender", ("male", "female")))


class TestSchema:
    def test_from_dict(self):
        schema = Schema.from_dict({"gender": ["male", "female"], "race": ["w", "b", "a"]})
        assert schema.names == ("gender", "race")
        assert schema.cardinalities == (2, 3)
        assert schema.n_attributes == 2
        assert schema.n_full_groups == 6

    def test_attribute_lookup(self):
        schema = Schema.from_dict({"gender": ["male", "female"]})
        assert schema.attribute("gender").cardinality == 2
        assert schema.index_of("gender") == 0
        with pytest.raises(UnknownGroupError):
            schema.attribute("race")
        with pytest.raises(UnknownGroupError):
            schema.index_of("race")

    def test_contains(self):
        schema = Schema.from_dict({"gender": ["male", "female"]})
        assert "gender" in schema
        assert "race" not in schema

    def test_empty_schema_rejected(self):
        with pytest.raises(SchemaError):
            Schema([])

    def test_duplicate_attribute_names_rejected(self):
        with pytest.raises(SchemaError):
            Schema([Attribute("a", ("x", "y")), Attribute("a", ("p", "q"))])

    def test_iteration_and_len(self):
        schema = Schema.from_dict({"a": ["0", "1"], "b": ["0", "1", "2"]})
        assert len(schema) == 2
        assert [attribute.name for attribute in schema] == ["a", "b"]

    def test_equality_is_structural(self):
        first = Schema.from_dict({"g": ["m", "f"]})
        second = Schema.from_dict({"g": ["m", "f"]})
        assert first == second
        assert hash(first) == hash(second)
