"""Property-based tests (hypothesis) for the fused streaming build.

The fused kernels of :mod:`repro.data.kernels` exist for speed — one
chunk touch per shard however many predicates a build indexes — so the
property pinned here is that speed changed *nothing*: for arbitrary
dataset content, arbitrary shard boundaries (including single-row
shards, an empty dataset, and a trailing partial shard), and arbitrary
query runs, the fused pass produces exactly the tables and counts of the
old two-pass route (mask the chunk, count it, then cumsum the mask
separately), and the sharded index built on top answers every run —
including the ≤ 2 partially covered boundary shards — identically to an
independent per-row reference.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.dataset import LabeledDataset
from repro.data.groups import group
from repro.data.kernels import (
    CallableChunkSource,
    fused_prefix_tables,
    fused_source_pass,
    predicate_mask,
)
from repro.data.schema import Schema
from repro.data.sharded import ShardedDataset, ShardedMembershipIndex

FEMALE = group(gender="female")
MALE = group(gender="male")
GENDER_SCHEMA = Schema.from_dict({"gender": ["male", "female"]})


def codes_from_bools(members: list[bool]) -> np.ndarray:
    return np.array(members, dtype=np.int16).reshape(-1, 1)


def two_pass_tables(schema, chunk, predicates):
    """The pre-fusion reference route: evaluate the mask, count it, then
    build the prefix table in a separate step (kept deliberately
    independent of the fused implementation)."""
    counts, tables = [], []
    for predicate in predicates:
        mask = predicate_mask(schema, chunk, predicate)
        counts.append(int(mask.sum()))
        tables.append(np.concatenate([[0], np.cumsum(mask, dtype=np.int64)]))
    return counts, tables


# ----------------------------------------------------------------------
# the fused kernel equals the two-pass route, chunk by chunk
# ----------------------------------------------------------------------
@settings(max_examples=150, deadline=None)
@given(
    members=st.lists(st.booleans(), min_size=0, max_size=120),
    shard_size=st.integers(min_value=1, max_value=50),
)
def test_fused_tables_equal_two_pass_route_per_shard(members, shard_size):
    codes = codes_from_bools(members)
    n_shards = -(-len(members) // shard_size)
    predicates = [FEMALE, MALE]
    for shard_index in range(n_shards):
        start = shard_index * shard_size
        stop = min(start + shard_size, len(members))
        chunk = codes[start:stop]
        fused = fused_prefix_tables(GENDER_SCHEMA, chunk, predicates)
        ref_counts, ref_tables = two_pass_tables(GENDER_SCHEMA, chunk, predicates)
        for fused_table, ref_table, ref_count in zip(fused, ref_tables, ref_counts):
            np.testing.assert_array_equal(fused_table, ref_table)
            assert fused_table.dtype == np.int32
            assert int(fused_table[-1]) == ref_count  # totals entry fused in


@settings(max_examples=80, deadline=None)
@given(
    members=st.lists(st.booleans(), min_size=1, max_size=80),
    want_tables=st.booleans(),
)
def test_fused_source_pass_matches_in_memory_kernel(members, want_tables):
    codes = codes_from_bools(members)

    def generate(shard_index, start, stop):
        return codes[start:stop]

    counts, tables = fused_source_pass(
        CallableChunkSource(generate), GENDER_SCHEMA, 0, 0, len(members),
        [FEMALE, MALE], want_tables,
    )
    ref_counts, ref_tables = two_pass_tables(GENDER_SCHEMA, codes, [FEMALE, MALE])
    assert counts == ref_counts
    if want_tables:
        for fused_table, ref_table in zip(tables, ref_tables):
            np.testing.assert_array_equal(fused_table, ref_table)
    else:
        assert tables is None


# ----------------------------------------------------------------------
# the fused streaming build equals a per-row reference on the full index
# ----------------------------------------------------------------------
@settings(max_examples=120, deadline=None)
@given(
    members=st.lists(st.booleans(), min_size=0, max_size=150),
    shard_size=st.integers(min_value=1, max_value=60),
    data=st.data(),
)
def test_fused_build_and_boundary_prefixes_answer_arbitrary_runs(
    members, shard_size, data
):
    codes = codes_from_bools(members)
    ds = ShardedDataset.from_generator(
        GENDER_SCHEMA, len(members), shard_size,
        lambda s, a, b: codes[a:b], max_resident_shards=2,
    )
    index = ShardedMembershipIndex(ds)
    index.build_totals([FEMALE, MALE])

    # Totals: cumulative per-shard member counts, computed per row here.
    n_shards = ds.n_shards
    for predicate, want in ((FEMALE, True), (MALE, False)):
        totals = index.shard_totals(predicate)
        assert len(totals) == n_shards + 1
        expected = 0
        for shard_index in range(n_shards):
            start, stop = ds.shard_bounds(shard_index)
            expected += sum(1 for m in members[start:stop] if m is want)
            assert int(totals[shard_index + 1]) == expected

    # Arbitrary runs: at most 2 boundary shards answer from local prefix
    # tables; the count must match a per-row reference regardless.
    for _ in range(4):
        a = data.draw(st.integers(min_value=0, max_value=len(members)))
        b = data.draw(st.integers(min_value=a, max_value=len(members)))
        run = np.arange(a, b)
        assert index.count(FEMALE, run) == sum(members[a:b])
        assert index.any_match(FEMALE, run) == any(members[a:b])


@settings(max_examples=80, deadline=None)
@given(members=st.lists(st.booleans(), min_size=1, max_size=100))
def test_single_row_shards_and_trailing_partial_shard(members):
    codes = codes_from_bools(members)
    dense = LabeledDataset(GENDER_SCHEMA, codes)
    # shard_size=1: every shard is a single row (maximal boundary count);
    # shard_size=len-ish: one partial trailing shard.
    for shard_size in (1, max(1, len(members) - 1), len(members)):
        ds = ShardedDataset.from_dataset(dense, shard_size, max_resident_shards=2)
        index = ShardedMembershipIndex(ds)
        full = np.arange(len(members))
        assert index.count(FEMALE, full) == sum(members)
        for point in {0, len(members) // 2, len(members) - 1}:
            assert index.matches(FEMALE, point) == members[point]


def test_empty_dataset_fused_build_is_a_no_op():
    ds = ShardedDataset.from_generator(
        GENDER_SCHEMA, 0, 10, lambda s, a, b: np.empty((0, 1), dtype=np.int16)
    )
    index = ShardedMembershipIndex(ds)
    index.build_totals([FEMALE])
    totals = index.shard_totals(FEMALE)
    np.testing.assert_array_equal(totals, np.zeros(1, dtype=np.int64))
    assert ds.stats.loads == 0
    assert index.count(FEMALE, np.empty(0, dtype=np.int64)) == 0


def test_fused_build_touches_each_chunk_once_for_many_predicates():
    """The point of fusion: totals for k predicates cost one pass, not k."""
    rng = np.random.default_rng(0)
    codes = rng.integers(0, 2, size=(1_000, 1)).astype(np.int16)
    ds = ShardedDataset.from_generator(
        GENDER_SCHEMA, 1_000, 100, lambda s, a, b: codes[a:b],
        max_resident_shards=2,
    )
    index = ShardedMembershipIndex(ds)
    index.build_totals([FEMALE, MALE])
    assert ds.stats.loads == ds.n_shards
