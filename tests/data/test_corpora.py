"""Unit tests for the paper-slice corpus builders."""

from __future__ import annotations

import pytest

from repro.data.corpora import (
    feret_mturk_slice,
    feret_unique_slice,
    mrl_eye_pool,
    utkface_gender_pool,
    utkface_slice,
)
from repro.data.groups import group
from repro.errors import InvalidParameterError


def test_feret_mturk_slice_composition(rng):
    ds = feret_mturk_slice(rng)
    assert len(ds) == 1522
    assert ds.count(group(gender="female")) == 215
    assert ds.count(group(gender="male")) == 1307


def test_feret_unique_slice_composition(rng):
    ds = feret_unique_slice(rng)
    assert len(ds) == 994
    assert ds.count(group(gender="female")) == 403


def test_feret_unique_slice_with_images(rng):
    ds = feret_unique_slice(rng, with_images=True)
    assert ds.images is not None and len(ds.images) == 994


@pytest.mark.parametrize("n_female", [200, 20])
def test_utkface_slices(rng, n_female):
    ds = utkface_slice(rng, n_female=n_female)
    assert len(ds) == 3000
    assert ds.count(group(gender="female")) == n_female


def test_utkface_slice_rejects_oversized_female_count(rng):
    with pytest.raises(InvalidParameterError):
        utkface_slice(rng, n_female=4000)


def test_utkface_gender_pool_composition(rng):
    pool = utkface_gender_pool(rng)
    assert pool.count(group(gender="male", race="caucasian")) == 3834
    assert pool.count(group(gender="female", race="caucasian")) == 3221
    assert pool.count(group(race="black")) == 1200
    assert pool.features is not None


def test_mrl_eye_pool_composition(rng):
    pool = mrl_eye_pool(rng, n_spectacled_pool=2000)
    assert pool.count(group(eye_state="open", spectacled="no")) == 14279
    assert pool.count(group(eye_state="closed", spectacled="no")) == 12201
    assert pool.count(group(spectacled="yes")) == 2000
    assert pool.images is not None
