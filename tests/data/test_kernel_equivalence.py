"""Differential harness: executor modes are bit-identical, and killed
pool workers surface as library errors.

``serial`` is the reference implementation; ``threads`` and
``processes`` must be pure re-schedulings of it. Over randomized
schemas, predicates, shard sizes, and query shapes, every surface of the
sharded index — ``count`` / ``any_match`` / ``any_match_runs`` /
``any_match_batch`` / ``matches`` / ``value_rows`` — must return
bit-identical answers in all three modes (and match the dense index),
and the ``ShardStats`` ledger must agree wherever execution is
deterministic (serial, and threaded builds that cannot evict). The chaos
section SIGKILLs a live pool worker mid-build and requires a
:class:`~repro.errors.ShardExecutionError` — never a hang or a bare
``BrokenProcessPool`` — with a bit-identical retry on a fresh executor,
mirroring the serving layer's kill/resume conformance suite.
"""

from __future__ import annotations

import functools
import os
import signal

import numpy as np
import pytest

from repro.data.dataset import LabeledDataset
from repro.data.groups import Negation, SuperGroup, group
from repro.data.membership import GroupMembershipIndex
from repro.data.schema import Schema
from repro.data.sharded import (
    ShardedDataset,
    ShardedMembershipIndex,
    ShardExecutor,
)
from repro.errors import InvalidParameterError, ReproError, ShardExecutionError

FEMALE = group(gender="female")


# ----------------------------------------------------------------------
# deterministic chunk generation (module-level: must pickle)
# ----------------------------------------------------------------------
def _chunk_rows(seed: int, cards: tuple[int, ...], start: int, stop: int) -> np.ndarray:
    """Rows [start, stop) of the synthetic code matrix for ``seed``.

    Row content depends only on (seed, global row index), never on shard
    geometry, so every substrate — dense, generator-sharded at any shard
    size, pool workers regenerating after eviction — sees identical data.
    """
    rows = np.arange(start, stop, dtype=np.int64)
    codes = np.empty((stop - start, len(cards)), dtype=np.int16)
    for j, card in enumerate(cards):
        # A cheap splitmix-style hash: deterministic, seed-sensitive,
        # uneven enough to exercise both sparse and dense predicates.
        h = (rows * 2654435761 + seed * 97 + j * 1013) % 10_007
        codes[:, j] = (h % card).astype(np.int16)
    return codes


def _generate_chunk(
    seed: int, cards: tuple[int, ...], shard_index: int, start: int, stop: int
) -> np.ndarray:
    return _chunk_rows(seed, cards, start, stop)


def _make_case(seed: int):
    """One randomized differential case: schema, data, predicates, queries."""
    rng = np.random.default_rng(seed)
    n_attributes = int(rng.integers(1, 4))
    cards = tuple(int(rng.integers(2, 5)) for _ in range(n_attributes))
    schema = Schema.from_dict(
        {
            f"attr{j}": [f"v{j}_{c}" for c in range(card)]
            for j, card in enumerate(cards)
        }
    )
    n_objects = int(rng.integers(200, 1_500))
    shard_size = int(rng.integers(7, n_objects + 1))
    codes = _chunk_rows(seed, cards, 0, n_objects)

    def random_group():
        picked = rng.choice(n_attributes, size=int(rng.integers(1, n_attributes + 1)),
                            replace=False)
        return group(**{
            f"attr{j}": f"v{j}_{int(rng.integers(0, cards[j]))}" for j in picked
        })

    predicates = [random_group(), random_group()]
    predicates.append(SuperGroup((random_group(), random_group())))
    predicates.append(Negation(random_group()))

    runs = []
    for _ in range(6):
        a, b = sorted(int(x) for x in rng.integers(0, n_objects + 1, size=2))
        runs.append((a, b))
    runs.append((0, n_objects))  # full range
    # Shard-aligned run (answerable from totals alone).
    if n_objects > shard_size:
        runs.append((shard_size, (n_objects // shard_size) * shard_size))
    scattereds = [
        np.sort(rng.choice(n_objects, size=int(rng.integers(1, 60)), replace=False))
        for _ in range(3)
    ]
    points = [int(x) for x in rng.integers(0, n_objects, size=8)]
    return schema, cards, n_objects, shard_size, codes, predicates, runs, scattereds, points


def _answer_surface(index, predicates, runs, scattereds, points):
    """Every query surface of one index, flattened into a comparable list."""
    answers = []
    for predicate in predicates:
        for a, b in runs:
            answers.append(index.count(predicate, np.arange(a, b)))
            answers.append(index.any_match(predicate, np.arange(a, b)))
        starts = np.array([a for a, _ in runs], dtype=np.int64)
        stops = np.array([b for _, b in runs], dtype=np.int64)
        answers.append(index.any_match_runs(predicate, starts, stops).tolist())
        for indices in scattereds:
            answers.append(index.count(predicate, indices))
        for point in points:
            answers.append(index.matches(predicate, point))
    batch = [(np.arange(a, b), p) for p in predicates for a, b in runs[:3]]
    batch += [(s, p) for p in predicates[:2] for s in scattereds]
    answers.append(index.any_match_batch(batch))
    answers.append(index.value_rows(points))
    return answers


@pytest.mark.parametrize("seed", [0, 1, 2, 3])
def test_executor_modes_are_bit_identical(seed, tmp_path):
    (schema, cards, n_objects, shard_size, codes,
     predicates, runs, scattereds, points) = _make_case(seed)

    dense = LabeledDataset(schema, codes)
    dense_index = GroupMembershipIndex.for_dataset(dense)
    reference = _answer_surface(dense_index, predicates, runs, scattereds, points)

    generate = functools.partial(_generate_chunk, seed, cards)
    path = str(tmp_path / f"codes_{seed}.npy")
    np.save(path, codes)

    surfaces = {}
    serial_ds = ShardedDataset.from_generator(
        schema, n_objects, shard_size, generate, max_resident_shards=2
    )
    surfaces["serial"] = _answer_surface(
        ShardedMembershipIndex(serial_ds), predicates, runs, scattereds, points
    )
    with ShardExecutor(mode="threads", max_workers=3) as threaded:
        ds = ShardedDataset.from_generator(
            schema, n_objects, shard_size, generate,
            executor=threaded, max_resident_shards=2,
        )
        surfaces["threads"] = _answer_surface(
            ShardedMembershipIndex.for_dataset(ds),
            predicates, runs, scattereds, points,
        )
    with ShardExecutor(mode="processes", max_workers=2) as pooled:
        ds = ShardedDataset.from_memmap(
            schema, path, shard_size, executor=pooled, max_resident_shards=2
        )
        surfaces["processes"] = _answer_surface(
            ShardedMembershipIndex.for_dataset(ds),
            predicates, runs, scattereds, points,
        )

    for mode, answers in surfaces.items():
        assert answers == reference, f"{mode} diverged from dense at seed {seed}"


@pytest.mark.parametrize("seed", [5, 6])
def test_shard_stats_accounting_identical_where_deterministic(seed):
    """Serial and threaded builds ledger identically when nothing can
    evict: each shard loads exactly once, the peak equals the shard
    count, and re-running the same queries serially reproduces the exact
    same counters."""
    (schema, cards, n_objects, shard_size, codes,
     predicates, runs, scattereds, points) = _make_case(seed)
    generate = functools.partial(_generate_chunk, seed, cards)
    n_shards = -(-n_objects // shard_size)

    ledgers = {}
    for mode in ("serial", "serial-again", "threads"):
        executor = (
            ShardExecutor(mode="threads", max_workers=3)
            if mode == "threads"
            else ShardExecutor()
        )
        with executor:
            ds = ShardedDataset.from_generator(
                schema, n_objects, shard_size, generate,
                executor=executor, max_resident_shards=n_shards,
            )
            index = ShardedMembershipIndex.for_dataset(ds)
            _answer_surface(index, predicates, runs, scattereds, points)
            ledgers[mode] = (
                ds.stats.loads,
                ds.stats.evictions,
                ds.stats.resident_shards,
                ds.stats.peak_resident_shards,
                ds.stats.resident_bytes,
                ds.stats.peak_resident_bytes,
            )
    assert ledgers["serial"] == ledgers["serial-again"]
    assert ledgers["serial"] == ledgers["threads"]
    loads, evictions = ledgers["serial"][0], ledgers["serial"][1]
    assert loads == n_shards  # fused build touches each chunk exactly once
    assert evictions == 0


def test_processes_mode_requires_picklable_source():
    schema = Schema.from_dict({"gender": ["male", "female"]})
    with ShardExecutor(mode="processes") as executor:
        with pytest.raises(InvalidParameterError, match="pickl"):
            ShardedDataset.from_generator(
                schema, 100, 25,
                lambda s, a, b: np.zeros((b - a, 1), dtype=np.int16),
                executor=executor,
            )
        dense = LabeledDataset(schema, np.zeros((100, 1), dtype=np.int16))
        with pytest.raises(InvalidParameterError, match="chunk source"):
            ShardedDataset.from_dataset(dense, 25, executor=executor)


# ----------------------------------------------------------------------
# chaos: a pool worker dies mid-build
# ----------------------------------------------------------------------
def _killer_chunk(
    flag_path: str, shard_index: int, start: int, stop: int
) -> np.ndarray:
    """Generate rows, but SIGKILL the calling process the first time
    shard 1 is requested (the flag file makes the kill one-shot, so a
    retry on a fresh pool generates normally)."""
    if shard_index == 1 and not os.path.exists(flag_path):
        with open(flag_path, "w") as fh:
            fh.write("killed")
            fh.flush()
            os.fsync(fh.fileno())
        os.kill(os.getpid(), signal.SIGKILL)
    return _chunk_rows(99, (2,), start, stop)


def test_sigkill_mid_build_surfaces_library_error_and_retry_is_identical(tmp_path):
    schema = Schema.from_dict({"gender": ["male", "female"]})
    generate = functools.partial(_killer_chunk, str(tmp_path / "killed.flag"))

    with ShardExecutor(mode="processes", max_workers=1) as executor:
        ds = ShardedDataset.from_generator(
            schema, 400, 100, generate, executor=executor
        )
        index = ShardedMembershipIndex.for_dataset(ds)
        with pytest.raises(ShardExecutionError, match="worker died") as caught:
            index.shard_totals(FEMALE)
        # A single `except ReproError` clause catches it, and the
        # original BrokenProcessPool rides along as the cause.
        assert isinstance(caught.value, ReproError)
        assert caught.value.__cause__ is not None

    # Retry on a fresh executor (the flag file disarms the kill):
    # bit-identical to the serial reference build.
    with ShardExecutor(mode="processes", max_workers=1) as executor:
        ds = ShardedDataset.from_generator(
            schema, 400, 100, generate, executor=executor
        )
        retried = ShardedMembershipIndex.for_dataset(ds).shard_totals(FEMALE)
    serial_ds = ShardedDataset.from_generator(schema, 400, 100, generate)
    reference = ShardedMembershipIndex(serial_ds).shard_totals(FEMALE)
    np.testing.assert_array_equal(retried, reference)


def test_executor_recovers_with_fresh_pool_after_worker_death(tmp_path):
    """The *same* executor object discards its broken pool and can map
    again — later builds lazily spin up a fresh pool."""
    schema = Schema.from_dict({"gender": ["male", "female"]})
    generate = functools.partial(
        _killer_chunk, str(tmp_path / "killed2.flag")
    )
    with ShardExecutor(mode="processes", max_workers=1) as executor:
        ds = ShardedDataset.from_generator(
            schema, 400, 100, generate, executor=executor
        )
        index = ShardedMembershipIndex.for_dataset(ds)
        with pytest.raises(ShardExecutionError):
            index.shard_totals(FEMALE)
        # Same executor, fresh pool, disarmed generator: exact answer.
        totals = index.shard_totals(FEMALE)
        serial = ShardedMembershipIndex(
            ShardedDataset.from_generator(schema, 400, 100, generate)
        ).shard_totals(FEMALE)
        np.testing.assert_array_equal(totals, serial)
