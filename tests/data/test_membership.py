"""GroupMembershipIndex: vectorized answering must equal row-at-a-time."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.dataset import LabeledDataset
from repro.data.groups import Negation, SuperGroup, group
from repro.data.membership import GroupMembershipIndex, as_run
from repro.data.schema import Schema
from repro.data.synthetic import binary_dataset, intersectional_dataset

FEMALE = group(gender="female")


@pytest.fixture
def dataset(rng):
    return binary_dataset(500, 60, rng=rng)


@pytest.fixture
def multi_dataset(rng):
    schema = Schema.from_dict(
        {"gender": ["male", "female"], "race": ["white", "black", "asian"]}
    )
    joint = {
        ("male", "white"): 200,
        ("female", "white"): 90,
        ("male", "black"): 40,
        ("female", "black"): 12,
        ("female", "asian"): 8,
    }
    return intersectional_dataset(schema, joint, rng=rng)


class TestAsRun:
    def test_detects_contiguous_ascending(self):
        assert as_run(np.arange(5, 12)) == (5, 12)
        assert as_run(np.array([3])) == (3, 4)

    def test_rejects_non_runs(self):
        assert as_run(np.array([], dtype=np.int64)) is None
        assert as_run(np.array([1, 3])) is None
        assert as_run(np.array([2, 1])) is None
        assert as_run(np.array([1, 2, 2, 3])) is None
        # Same endpoints/length as a run, but not ascending by 1.
        assert as_run(np.array([0, 2, 1, 3])) is None


class TestMembershipIndex:
    def test_shared_per_dataset(self, dataset):
        assert (
            GroupMembershipIndex.for_dataset(dataset)
            is GroupMembershipIndex.for_dataset(dataset)
        )

    def test_prefix_counts_match_mask(self, dataset):
        index = GroupMembershipIndex.for_dataset(dataset)
        prefix = index.prefix(FEMALE)
        mask = dataset.mask(FEMALE)
        assert prefix[0] == 0
        assert prefix[-1] == mask.sum()
        assert np.array_equal(np.diff(prefix), mask.astype(np.int64))

    @pytest.mark.parametrize("predicate", [
        FEMALE,
        Negation(FEMALE),
        SuperGroup([group(gender="female"), group(gender="male")]),
    ])
    def test_any_match_equals_row_at_a_time(self, dataset, rng, predicate):
        index = GroupMembershipIndex.for_dataset(dataset)
        for _ in range(50):
            if rng.random() < 0.5:  # contiguous run
                start = int(rng.integers(0, len(dataset)))
                stop = int(rng.integers(start, len(dataset) + 1))
                indices = np.arange(start, stop)
            else:  # scattered
                size = int(rng.integers(0, 40))
                indices = rng.choice(len(dataset), size=size, replace=False)
            expected = any(
                predicate.matches_row(dataset.value_row(int(i))) for i in indices
            )
            assert index.any_match(predicate, indices) == expected
            expected_count = sum(
                predicate.matches_row(dataset.value_row(int(i))) for i in indices
            )
            assert index.count(predicate, indices) == expected_count

    def test_any_match_batch_mixes_runs_and_scatter(self, multi_dataset, rng):
        index = GroupMembershipIndex.for_dataset(multi_dataset)
        predicates = [
            group(race="black"),
            group(gender="female", race="asian"),
            Negation(group(gender="male")),
        ]
        queries = []
        for _ in range(120):
            predicate = predicates[int(rng.integers(len(predicates)))]
            shape = rng.random()
            if shape < 0.4:
                start = int(rng.integers(0, len(multi_dataset)))
                stop = int(rng.integers(start, len(multi_dataset) + 1))
                indices = np.arange(start, stop)
            elif shape < 0.8:
                size = int(rng.integers(1, 30))
                indices = rng.choice(len(multi_dataset), size=size, replace=False)
            else:
                indices = np.empty(0, dtype=np.int64)
            queries.append((indices, predicate))
        answers = index.any_match_batch(queries)
        for (indices, predicate), answer in zip(queries, answers):
            expected = any(
                predicate.matches_row(multi_dataset.value_row(int(i)))
                for i in indices
            )
            assert answer == expected

    def test_any_match_runs_vectorized(self, dataset):
        index = GroupMembershipIndex.for_dataset(dataset)
        starts = np.array([0, 100, 250, 499])
        stops = np.array([50, 100, 400, 500])
        hits = index.any_match_runs(FEMALE, starts, stops)
        for start, stop, hit in zip(starts, stops, hits):
            expected = bool(dataset.mask(FEMALE)[start:stop].any())
            assert bool(hit) == expected

    def test_value_rows_match_value_row(self, multi_dataset, rng):
        index = GroupMembershipIndex.for_dataset(multi_dataset)
        indices = rng.choice(len(multi_dataset), size=25, replace=False)
        rows = index.value_rows(indices)
        assert rows == [multi_dataset.value_row(int(i)) for i in indices]
        assert index.value_rows([]) == []

    def test_value_rows_bounds_checked_like_value_row(self, dataset):
        """Negative indices must raise, not silently wrap to the end of
        the dataset the way raw fancy-indexing would."""
        from repro.errors import OracleError

        index = GroupMembershipIndex.for_dataset(dataset)
        with pytest.raises(OracleError):
            index.value_rows([0, -1])
        with pytest.raises(OracleError):
            index.value_rows([len(dataset)])


class TestValidation:
    def test_unknown_predicate_raises_like_dataset(self, dataset):
        from repro.errors import UnknownGroupError

        index = GroupMembershipIndex.for_dataset(dataset)
        with pytest.raises(UnknownGroupError):
            index.any_match(group(age="old"), np.arange(5))

    def test_empty_dataset(self):
        schema = Schema.from_dict({"gender": ["male", "female"]})
        empty = LabeledDataset(schema, np.empty((0, 1), dtype=np.int16))
        index = GroupMembershipIndex.for_dataset(empty)
        assert index.any_match(FEMALE, np.empty(0, dtype=np.int64)) is False
        assert index.prefix(FEMALE).tolist() == [0]
