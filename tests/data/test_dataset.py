"""Unit tests for repro.data.dataset.LabeledDataset."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.dataset import LabeledDataset
from repro.data.groups import Negation, SuperGroup, group
from repro.data.schema import Schema
from repro.errors import InvalidParameterError, OracleError


@pytest.fixture
def schema():
    return Schema.from_dict(
        {"gender": ["male", "female"], "race": ["white", "black"]}
    )


@pytest.fixture
def dataset(schema):
    rows = [
        {"gender": "male", "race": "white"},
        {"gender": "female", "race": "white"},
        {"gender": "female", "race": "black"},
        {"gender": "male", "race": "black"},
        {"gender": "female", "race": "black"},
    ]
    return LabeledDataset.from_value_rows(schema, rows, name="toy")


class TestConstruction:
    def test_from_value_rows_roundtrip(self, dataset):
        assert len(dataset) == 5
        assert dataset.value_row(2) == {"gender": "female", "race": "black"}

    def test_codes_shape_validation(self, schema):
        with pytest.raises(InvalidParameterError):
            LabeledDataset(schema, np.zeros((3,), dtype=np.int16))
        with pytest.raises(InvalidParameterError):
            LabeledDataset(schema, np.zeros((3, 3), dtype=np.int16))

    def test_code_range_validation(self, schema):
        bad = np.array([[0, 5]], dtype=np.int16)
        with pytest.raises(InvalidParameterError):
            LabeledDataset(schema, bad)

    def test_images_length_validation(self, schema):
        with pytest.raises(InvalidParameterError):
            LabeledDataset(
                schema, np.zeros((3, 2), dtype=np.int16), images=np.zeros((2, 4, 4))
            )

    def test_codes_are_read_only(self, dataset):
        with pytest.raises(ValueError):
            dataset.codes[0, 0] = 1


class TestPredicates:
    def test_mask_and_count_group(self, dataset):
        female = group(gender="female")
        assert dataset.count(female) == 3
        assert dataset.mask(female).tolist() == [False, True, True, False, True]

    def test_conjunction(self, dataset):
        assert dataset.count(group(gender="female", race="black")) == 2

    def test_supergroup(self, dataset):
        sg = SuperGroup([group(gender="male"), group(race="black")])
        assert dataset.count(sg) == 4  # rows 0, 2, 3, 4

    def test_negation(self, dataset):
        assert dataset.count(Negation(group(gender="female"))) == 2

    def test_mask_is_cached(self, dataset):
        female = group(gender="female")
        assert dataset.mask(female) is dataset.mask(female)

    def test_positions_sorted(self, dataset):
        positions = dataset.positions(group(gender="female"))
        assert positions.tolist() == [1, 2, 4]

    def test_matches_single_object(self, dataset):
        assert dataset.matches(1, group(gender="female"))
        assert not dataset.matches(0, group(gender="female"))

    def test_is_covered(self, dataset):
        assert dataset.is_covered(group(gender="female"), 3)
        assert not dataset.is_covered(group(gender="female"), 4)
        with pytest.raises(InvalidParameterError):
            dataset.is_covered(group(gender="female"), -1)


class TestStatistics:
    def test_counts_by_value(self, dataset):
        assert dataset.counts_by_value("gender") == {"male": 2, "female": 3}

    def test_joint_counts(self, dataset):
        joint = dataset.joint_counts()
        assert joint[("female", "black")] == 2
        assert joint[("male", "white")] == 1
        assert sum(joint.values()) == 5

    def test_describe_mentions_counts(self, dataset):
        text = dataset.describe()
        assert "female=3" in text
        assert "toy" in text


class TestRestructuring:
    def test_subset_preserves_order(self, dataset):
        sub = dataset.subset([4, 0])
        assert sub.value_row(0) == {"gender": "female", "race": "black"}
        assert sub.value_row(1) == {"gender": "male", "race": "white"}

    def test_shuffled_is_permutation(self, dataset, rng):
        shuffled = dataset.shuffled(rng)
        assert len(shuffled) == len(dataset)
        assert shuffled.count(group(gender="female")) == 3

    def test_concatenated(self, dataset):
        combined = dataset.concatenated(dataset)
        assert len(combined) == 10
        assert combined.count(group(gender="female")) == 6

    def test_concatenated_schema_mismatch(self, dataset):
        other = LabeledDataset(
            Schema.from_dict({"x": ["0", "1"]}), np.zeros((1, 1), dtype=np.int16)
        )
        with pytest.raises(InvalidParameterError):
            dataset.concatenated(other)

    def test_value_row_out_of_range(self, dataset):
        with pytest.raises(OracleError):
            dataset.value_row(99)
