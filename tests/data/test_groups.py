"""Unit tests for repro.data.groups (the predicate algebra)."""

from __future__ import annotations

import pytest

from repro.data.groups import Group, Negation, SuperGroup, group
from repro.data.schema import Schema
from repro.errors import InvalidParameterError, UnknownGroupError


@pytest.fixture
def schema():
    return Schema.from_dict(
        {"gender": ["male", "female"], "race": ["white", "black", "asian"]}
    )


class TestGroup:
    def test_kwargs_constructor(self):
        assert group(gender="female") == Group({"gender": "female"})

    def test_matches_row(self):
        g = group(gender="female", race="asian")
        assert g.matches_row({"gender": "female", "race": "asian"})
        assert not g.matches_row({"gender": "female", "race": "black"})
        assert not g.matches_row({"gender": "female"})  # missing attribute

    def test_condition_order_does_not_matter(self):
        first = Group({"a": "1", "b": "2"})
        second = Group({"b": "2", "a": "1"})
        assert first == second
        assert hash(first) == hash(second)

    def test_empty_conditions_rejected(self):
        with pytest.raises(InvalidParameterError):
            Group({})

    def test_validate_against_schema(self, schema):
        group(gender="female").validate(schema)
        with pytest.raises(UnknownGroupError):
            group(age="old").validate(schema)
        with pytest.raises(UnknownGroupError):
            group(gender="unknown").validate(schema)

    def test_value_of_and_constrains(self):
        g = group(gender="female")
        assert g.value_of("gender") == "female"
        assert g.constrains("gender")
        assert not g.constrains("race")
        with pytest.raises(UnknownGroupError):
            g.value_of("race")

    def test_is_fully_specified(self, schema):
        assert group(gender="female", race="asian").is_fully_specified(schema)
        assert not group(gender="female").is_fully_specified(schema)

    def test_shares_parent_with(self):
        a = group(gender="female", race="asian")
        b = group(gender="female", race="black")
        c = group(gender="male", race="black")
        d = group(gender="male")
        assert a.shares_parent_with(b)  # differ only on race
        assert b.shares_parent_with(c)  # differ only on gender
        assert not a.shares_parent_with(c)  # differ on both
        assert not a.shares_parent_with(d)  # different attribute sets
        assert not a.shares_parent_with(a)  # differ on none

    def test_describe(self):
        assert group(gender="female").describe() == "gender=female"
        assert (
            group(race="asian", gender="female").describe()
            == "gender=female AND race=asian"
        )


class TestSuperGroup:
    def test_or_semantics(self):
        sg = SuperGroup([group(race="asian"), group(race="black")])
        assert sg.matches_row({"race": "asian"})
        assert sg.matches_row({"race": "black"})
        assert not sg.matches_row({"race": "white"})

    def test_equality_ignores_order(self):
        first = SuperGroup([group(race="asian"), group(race="black")])
        second = SuperGroup([group(race="black"), group(race="asian")])
        assert first == second
        assert hash(first) == hash(second)

    def test_duplicates_rejected(self):
        with pytest.raises(InvalidParameterError):
            SuperGroup([group(race="asian"), group(race="asian")])

    def test_empty_rejected(self):
        with pytest.raises(InvalidParameterError):
            SuperGroup([])

    def test_len_and_iter(self):
        members = [group(race="asian"), group(race="black")]
        sg = SuperGroup(members)
        assert len(sg) == 2
        assert list(sg) == members

    def test_validate(self, schema):
        SuperGroup([group(race="asian")]).validate(schema)
        with pytest.raises(UnknownGroupError):
            SuperGroup([group(planet="mars")]).validate(schema)

    def test_describe_singleton_vs_multi(self):
        assert SuperGroup([group(race="asian")]).describe() == "race=asian"
        multi = SuperGroup([group(race="asian"), group(race="black")])
        assert "OR" in multi.describe()


class TestNegation:
    def test_complement_semantics(self):
        predicate = Negation(group(gender="female"))
        assert predicate.matches_row({"gender": "male"})
        assert not predicate.matches_row({"gender": "female"})

    def test_negated_supergroup(self):
        predicate = Negation(SuperGroup([group(race="asian"), group(race="black")]))
        assert predicate.matches_row({"race": "white"})
        assert not predicate.matches_row({"race": "asian"})

    def test_describe(self):
        assert Negation(group(gender="female")).describe() == "NOT (gender=female)"

    def test_validate(self, schema):
        Negation(group(gender="female")).validate(schema)
        with pytest.raises(UnknownGroupError):
            Negation(group(moon="full")).validate(schema)
