"""Unit tests for the synthetic image renderer."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.images import ImageRenderer, attach_images
from repro.data.schema import Schema
from repro.data.synthetic import binary_dataset, intersectional_dataset
from repro.errors import InvalidParameterError


class TestImageRenderer:
    def test_prototype_determinism(self):
        first = ImageRenderer(seed=5).prototype("gender", "female")
        second = ImageRenderer(seed=5).prototype("gender", "female")
        np.testing.assert_array_equal(first, second)

    def test_prototype_differs_by_value(self):
        renderer = ImageRenderer(seed=5)
        male = renderer.prototype("gender", "male")
        female = renderer.prototype("gender", "female")
        assert not np.array_equal(male, female)

    def test_prototype_differs_by_seed(self):
        a = ImageRenderer(seed=1).prototype("gender", "female")
        b = ImageRenderer(seed=2).prototype("gender", "female")
        assert not np.array_equal(a, b)

    def test_render_shape_and_range(self, rng):
        ds = binary_dataset(20, 5, rng=rng)
        images = ImageRenderer().render(ds, rng)
        assert images.shape == (20, 16, 16)
        assert images.min() >= 0.0 and images.max() <= 1.0

    def test_invalid_size(self):
        with pytest.raises(InvalidParameterError):
            ImageRenderer(image_size=10, coarse=4)  # not a multiple
        with pytest.raises(InvalidParameterError):
            ImageRenderer(noise=-0.1)
        with pytest.raises(InvalidParameterError):
            ImageRenderer(interaction=1.5)

    def test_group_signal_is_learnable(self, rng):
        """Mean images of the two groups must differ by more than noise."""
        from repro.data.groups import group

        ds = binary_dataset(400, 200, rng=rng)
        renderer = ImageRenderer(noise=0.1)
        images = renderer.render(ds, rng)
        female_mask = ds.mask(group(gender="female"))
        gap = np.abs(
            images[female_mask].mean(axis=0) - images[~female_mask].mean(axis=0)
        ).mean()
        assert gap > 0.02

    def test_interaction_changes_class_appearance_across_groups(self, rng):
        """With interaction on, the class signal must differ between groups
        (the mechanism behind the Fig 6 disparity)."""
        schema = Schema.from_dict(
            {"cls": ["a", "b"], "grp": ["x", "y"]}
        )
        ds = intersectional_dataset(
            schema,
            {("a", "x"): 100, ("b", "x"): 100, ("a", "y"): 100, ("b", "y"): 100},
            shuffle=False,
        )
        renderer = ImageRenderer(noise=0.0, interaction=0.8)
        images = renderer.render(ds, rng)
        # class contrast within group x vs within group y
        contrast_x = images[0:100].mean(axis=0) - images[100:200].mean(axis=0)
        contrast_y = images[200:300].mean(axis=0) - images[300:400].mean(axis=0)
        assert np.abs(contrast_x - contrast_y).mean() > 0.05


class TestAttachImages:
    def test_attaches_images_and_features(self, rng):
        ds = attach_images(binary_dataset(12, 4, rng=rng), rng)
        assert ds.images.shape == (12, 16, 16)
        assert ds.features.shape == (12, 256)
        np.testing.assert_array_equal(
            ds.features[3], ds.images[3].reshape(-1)
        )

    def test_preserves_labels(self, rng):
        from repro.data.groups import group

        base = binary_dataset(30, 7, rng=rng)
        ds = attach_images(base, rng)
        assert ds.count(group(gender="female")) == 7
