"""Unit tests for repro.data.synthetic generators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.groups import group
from repro.data.schema import Schema
from repro.data.synthetic import (
    adversarial_tightness_dataset,
    binary_dataset,
    intersectional_dataset,
    proportions_dataset,
    single_attribute_dataset,
)
from repro.errors import InvalidParameterError


class TestBinaryDataset:
    def test_exact_counts(self, rng):
        ds = binary_dataset(1000, 37, rng=rng)
        assert len(ds) == 1000
        assert ds.count(group(gender="female")) == 37
        assert ds.count(group(gender="male")) == 963

    def test_custom_attribute_names(self, rng):
        ds = binary_dataset(
            100, 10, attribute="skin_tone", majority="fair", minority="dark", rng=rng
        )
        assert ds.count(group(skin_tone="dark")) == 10

    def test_front_placement(self):
        ds = binary_dataset(10, 3, placement="front")
        assert ds.mask(group(gender="female"))[:3].all()
        assert not ds.mask(group(gender="female"))[3:].any()

    def test_back_placement(self):
        ds = binary_dataset(10, 3, placement="back")
        assert ds.mask(group(gender="female"))[-3:].all()

    def test_uniform_placement_spreads(self):
        ds = binary_dataset(100, 10, placement="uniform")
        positions = ds.positions(group(gender="female"))
        gaps = np.diff(positions)
        assert gaps.min() >= 5  # roughly evenly spaced (stride 10)

    def test_random_requires_rng(self):
        with pytest.raises(InvalidParameterError):
            binary_dataset(10, 2, placement="random")

    def test_minority_bounds(self, rng):
        with pytest.raises(InvalidParameterError):
            binary_dataset(10, 11, rng=rng)
        assert binary_dataset(10, 0, rng=rng).count(group(gender="female")) == 0
        assert binary_dataset(10, 10, rng=rng).count(group(gender="female")) == 10


class TestSingleAttributeDataset:
    def test_exact_counts(self, rng):
        counts = {"white": 500, "black": 60, "asian": 40}
        ds = single_attribute_dataset(counts, rng=rng)
        assert ds.counts_by_value("race") == counts

    def test_unshuffled_layout(self):
        ds = single_attribute_dataset(
            {"a": 2, "b": 3}, attribute="x", shuffle=False
        )
        assert ds.column("x").tolist() == [0, 0, 1, 1, 1]

    def test_shuffle_requires_rng(self):
        with pytest.raises(InvalidParameterError):
            single_attribute_dataset({"a": 2, "b": 2})


class TestIntersectionalDataset:
    def test_joint_counts(self, rng):
        schema = Schema.from_dict(
            {"gender": ["male", "female"], "race": ["white", "black"]}
        )
        ds = intersectional_dataset(
            schema,
            {("male", "white"): 10, ("female", "black"): 5},
            rng=rng,
        )
        assert len(ds) == 15
        assert ds.joint_counts() == {("male", "white"): 10, ("female", "black"): 5}

    def test_wrong_arity_rejected(self, rng):
        schema = Schema.from_dict({"gender": ["male", "female"]})
        with pytest.raises(InvalidParameterError):
            intersectional_dataset(schema, {("male", "white"): 3}, rng=rng)

    def test_negative_count_rejected(self, rng):
        schema = Schema.from_dict({"gender": ["male", "female"]})
        with pytest.raises(InvalidParameterError):
            intersectional_dataset(schema, {("male",): -1}, rng=rng)

    def test_empty_counts_yield_empty_dataset(self):
        schema = Schema.from_dict({"gender": ["male", "female"]})
        ds = intersectional_dataset(schema, {}, shuffle=False)
        assert len(ds) == 0


class TestProportionsDataset:
    def test_counts_near_expectations(self, rng):
        ds = proportions_dataset(
            10_000, {"a": 0.9, "b": 0.1}, attribute="x", rng=rng
        )
        counts = ds.counts_by_value("x")
        assert 850 <= counts["b"] <= 1150

    def test_invalid_proportions_rejected(self, rng):
        with pytest.raises(InvalidParameterError):
            proportions_dataset(10, {"a": 0.7, "b": 0.7}, rng=rng)


class TestAdversarialDataset:
    def test_tau_minus_one_members(self):
        ds = adversarial_tightness_dataset(1024, 32)
        assert ds.count(group(gender="female")) == 31

    def test_members_spread_uniformly(self):
        ds = adversarial_tightness_dataset(1000, 11)
        positions = ds.positions(group(gender="female"))
        assert np.diff(positions).min() >= 50

    def test_invalid_tau(self):
        with pytest.raises(InvalidParameterError):
            adversarial_tightness_dataset(100, 0)
