"""ShardedDataset / ShardedMembershipIndex: geometry, residency, exactness.

The sharded out-of-core path must be a pure re-arrangement of the dense
index: every count, membership bit, and label row identical, with memory
structurally bounded by the resident-shard cap. Shard-boundary edge
cases (runs starting/ending exactly on a boundary, single-row shards,
an exact-multiple N with no trailing partial shard) get explicit tests
on top of the randomized property test.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.data.groups import Negation, SuperGroup, group
from repro.data.membership import GroupMembershipIndex, membership_index_for
from repro.data.schema import Schema
from repro.data.sharded import (
    ShardedDataset,
    ShardedMembershipIndex,
    ShardExecutor,
    dense_index_bytes,
)
from repro.data.synthetic import binary_dataset, intersectional_dataset
from repro.engine.requests import IndexKey
from repro.errors import InvalidParameterError, OracleError

FEMALE = group(gender="female")


@pytest.fixture
def dense():
    return binary_dataset(1_000, 37, rng=np.random.default_rng(11))


def sharded_over(dense, shard_size, **kwargs):
    return ShardedDataset.from_dataset(dense, shard_size, **kwargs)


# ----------------------------------------------------------------------
# geometry
# ----------------------------------------------------------------------
def test_shard_geometry_with_partial_trailing_shard(dense):
    ds = sharded_over(dense, 300)
    assert len(ds) == 1_000
    assert ds.n_shards == 4
    assert [ds.shard_bounds(s) for s in range(4)] == [
        (0, 300), (300, 600), (600, 900), (900, 1_000),
    ]
    with pytest.raises(InvalidParameterError):
        ds.shard_bounds(4)


def test_exact_multiple_has_no_trailing_partial_shard(dense):
    ds = sharded_over(dense, 250)
    assert ds.n_shards == 4
    assert ds.shard_bounds(3) == (750, 1_000)
    # The last shard is full-sized; indexing one past it raises.
    with pytest.raises(InvalidParameterError):
        ds.shard_bounds(4)
    index = ShardedMembershipIndex(ds)
    dense_index = GroupMembershipIndex.for_dataset(dense)
    run = np.arange(0, 1_000)
    assert index.count(FEMALE, run) == dense_index.count(FEMALE, run)


def test_empty_dataset_answers_empty():
    schema = Schema.from_dict({"gender": ["male", "female"]})
    ds = ShardedDataset.from_generator(
        schema, 0, 10, lambda s, a, b: np.empty((0, 1), dtype=np.int16)
    )
    assert ds.n_shards == 0
    index = ShardedMembershipIndex(ds)
    assert index.count(FEMALE, np.empty(0, dtype=np.int64)) == 0
    assert index.any_match(FEMALE, np.empty(0, dtype=np.int64)) is False
    assert index.value_rows([]) == []


def test_single_row_shards_match_dense(dense):
    ds = sharded_over(dense, 1, max_resident_shards=3)
    assert ds.n_shards == 1_000
    index = ShardedMembershipIndex(ds)
    dense_index = GroupMembershipIndex.for_dataset(dense)
    rng = np.random.default_rng(0)
    for _ in range(30):
        a, b = sorted(int(x) for x in rng.integers(0, 1_001, size=2))
        run = np.arange(a, b)
        assert index.count(FEMALE, run) == dense_index.count(FEMALE, run)
    for i in (0, 17, 999):
        assert index.matches(FEMALE, i) == dense_index.matches(FEMALE, i)


# ----------------------------------------------------------------------
# residency
# ----------------------------------------------------------------------
def test_lru_residency_cap_is_respected(dense):
    ds = sharded_over(dense, 100, max_resident_shards=2)
    for s in range(ds.n_shards):
        ds.chunk(s)
    assert ds.stats.loads == 10
    assert ds.stats.evictions == 8
    assert ds.stats.resident_shards == 2
    assert ds.stats.peak_resident_shards == 2
    row_bytes = 2 * dense.schema.n_attributes
    assert ds.stats.peak_resident_bytes <= 2 * 100 * row_bytes


def test_evicted_chunks_reload_identically(dense):
    ds = sharded_over(dense, 100, max_resident_shards=1)
    first = np.array(ds.chunk(0))
    ds.chunk(5)  # evicts shard 0
    assert ds.stats.evictions >= 1
    np.testing.assert_array_equal(np.array(ds.chunk(0)), first)


def test_loader_shape_and_range_validation():
    schema = Schema.from_dict({"gender": ["male", "female"]})
    bad_shape = ShardedDataset(
        schema, 10, 5, lambda s, a, b: np.zeros((1, 1), dtype=np.int16)
    )
    with pytest.raises(InvalidParameterError, match="shape"):
        bad_shape.chunk(0)
    bad_codes = ShardedDataset(
        schema, 10, 5, lambda s, a, b: np.full((b - a, 1), 7, dtype=np.int16)
    )
    with pytest.raises(InvalidParameterError, match="outside"):
        bad_codes.chunk(0)


def test_constructor_validation():
    schema = Schema.from_dict({"gender": ["male", "female"]})
    loader = lambda s, a, b: np.zeros((b - a, 1), dtype=np.int16)  # noqa: E731
    with pytest.raises(InvalidParameterError):
        ShardedDataset(schema, -1, 5, loader)
    with pytest.raises(InvalidParameterError):
        ShardedDataset(schema, 10, 0, loader)
    with pytest.raises(InvalidParameterError):
        ShardedDataset(schema, 10, 5, loader, max_resident_shards=0)


def test_from_memmap_round_trip(tmp_path, dense):
    path = tmp_path / "codes.npy"
    np.save(path, dense.codes)
    ds = ShardedDataset.from_memmap(dense.schema, path, 128)
    assert len(ds) == len(dense)
    index = ShardedMembershipIndex(ds)
    dense_index = GroupMembershipIndex.for_dataset(dense)
    run = np.arange(40, 900)
    assert index.count(FEMALE, run) == dense_index.count(FEMALE, run)
    assert ds.value_row(123) == dense.value_row(123)
    with pytest.raises(InvalidParameterError, match="shape"):
        ShardedDataset.from_memmap(
            Schema.from_dict({"a": ["x", "y"], "b": ["x", "y"]}), path, 128
        )


# ----------------------------------------------------------------------
# shard-boundary behavior
# ----------------------------------------------------------------------
def test_boundary_aligned_runs_touch_no_chunks(dense):
    ds = sharded_over(dense, 200, max_resident_shards=2)
    index = ShardedMembershipIndex(ds)
    index.shard_totals(FEMALE)  # streaming build pays its chunk loads
    loads_after_build = ds.stats.loads
    dense_index = GroupMembershipIndex.for_dataset(dense)
    # Runs starting AND ending exactly on shard boundaries resolve from
    # the totals alone — no boundary shard is ever materialized.
    for start, stop in [(0, 200), (200, 800), (0, 1_000), (400, 400), (800, 1_000)]:
        run = np.arange(start, stop)
        assert index.count(FEMALE, run) == dense_index.count(FEMALE, run)
        assert index.any_match(FEMALE, run) == dense_index.any_match(FEMALE, run)
    assert ds.stats.loads == loads_after_build


def test_runs_starting_or_ending_on_boundary(dense):
    ds = sharded_over(dense, 128)
    index = ShardedMembershipIndex(ds)
    dense_index = GroupMembershipIndex.for_dataset(dense)
    cases = [
        (128, 300),    # starts exactly on a boundary
        (50, 256),     # ends exactly on a boundary
        (128, 256),    # both aligned, single whole shard
        (127, 129),    # straddles a boundary by one row each side
        (255, 256),    # last row of a shard
        (256, 257),    # first row of a shard
        (900, 1_000),  # into the trailing partial shard
    ]
    for start, stop in cases:
        run = np.arange(start, stop)
        assert index.count(FEMALE, run) == dense_index.count(FEMALE, run), (start, stop)


def test_key_hinted_answers_match_unhinted(dense):
    ds = sharded_over(dense, 96)
    index = ShardedMembershipIndex(ds)
    run_key = IndexKey.of_run(100, 500)
    run = np.arange(100, 500)
    assert index.any_match(FEMALE, run, key=run_key) == index.any_match(FEMALE, run)
    scattered = np.array([5, 97, 300, 999], dtype=np.int64)
    scattered_key = IndexKey.of(scattered)
    assert index.any_match(FEMALE, scattered, key=scattered_key) == index.any_match(
        FEMALE, scattered
    )


# ----------------------------------------------------------------------
# the randomized property: sharded == dense on random views
# ----------------------------------------------------------------------
@pytest.mark.parametrize("shard_size", [1, 7, 64, 250, 1_000, 4_096])
@pytest.mark.parametrize("mode", ["serial", "threads"])
def test_property_sharded_equals_dense_on_random_views(shard_size, mode):
    rng = np.random.default_rng(shard_size * 31 + (mode == "threads"))
    schema = Schema.from_dict(
        {"gender": ["male", "female"], "race": ["white", "black"]}
    )
    n = 1_000
    joint = {
        ("male", "white"): n - 90,
        ("female", "white"): 40,
        ("male", "black"): 30,
        ("female", "black"): 20,
    }
    dense = intersectional_dataset(schema, joint, rng=rng)
    dense_index = GroupMembershipIndex.for_dataset(dense)
    with ShardExecutor(mode=mode, max_workers=3) as executor:
        index = ShardedMembershipIndex(
            ShardedDataset.from_dataset(dense, shard_size, max_resident_shards=2),
            executor=executor,
        )
        predicates = [
            group(gender="female"),
            group(gender="female", race="black"),
            SuperGroup([group(race="black"), group(gender="female")]),
            Negation(group(gender="male")),
        ]
        for predicate in predicates:
            queries, keys = [], []
            for _ in range(40):
                if rng.random() < 0.5:
                    a, b = sorted(int(x) for x in rng.integers(0, n + 1, size=2))
                    indices = np.arange(a, b)
                else:
                    k = int(rng.integers(0, 40))
                    indices = np.sort(rng.choice(n, size=k, replace=False))
                queries.append((indices, predicate))
                keys.append(IndexKey.of(indices))
                assert index.count(predicate, indices) == dense_index.count(
                    predicate, indices
                )
                assert index.any_match(predicate, indices) == dense_index.any_match(
                    predicate, indices
                )
            assert index.any_match_batch(queries) == dense_index.any_match_batch(
                queries
            )
            assert index.any_match_batch(
                queries, keys=keys
            ) == dense_index.any_match_batch(queries, keys=keys)
        starts = rng.integers(0, n // 2, size=25)
        stops = starts + rng.integers(0, n // 2, size=25)
        np.testing.assert_array_equal(
            index.any_match_runs(predicates[0], starts, stops),
            dense_index.any_match_runs(predicates[0], starts, stops),
        )


# ----------------------------------------------------------------------
# rows and labels
# ----------------------------------------------------------------------
def test_value_rows_match_dense_and_validate_bounds(dense):
    ds = sharded_over(dense, 333)
    index = ShardedMembershipIndex(ds)
    dense_index = GroupMembershipIndex.for_dataset(dense)
    picks = [0, 332, 333, 334, 999, 500]
    assert index.value_rows(picks) == dense_index.value_rows(picks)
    with pytest.raises(OracleError, match="out of range"):
        index.value_rows([5, -1])
    with pytest.raises(OracleError, match="out of range"):
        index.value_rows([1_000])
    assert ds.value_row(999) == dense.value_row(999)
    with pytest.raises(OracleError):
        ds.value_row(-1)


# ----------------------------------------------------------------------
# executor and plumbing
# ----------------------------------------------------------------------
def test_shard_executor_modes_and_validation():
    # Invalid mode strings fail fast at construction, not at first use.
    with pytest.raises(InvalidParameterError, match="mode"):
        ShardExecutor(mode="gpu")
    with pytest.raises(InvalidParameterError, match="mode"):
        ShardExecutor(mode="thread")  # close-but-wrong singular form
    with pytest.raises(InvalidParameterError):
        ShardExecutor(max_workers=0)
    serial = ShardExecutor()
    assert serial.map(lambda x: x + 1, range(5)) == [1, 2, 3, 4, 5]
    serial.close()  # no-op
    with ShardExecutor(mode="threads", max_workers=2) as threaded:
        assert threaded.map(lambda x: x * 2, range(10)) == [x * 2 for x in range(10)]


def test_for_dataset_caches_one_index_and_dispatch_helper(dense):
    ds = sharded_over(dense, 100)
    first = ShardedMembershipIndex.for_dataset(ds)
    assert ShardedMembershipIndex.for_dataset(ds) is first
    assert membership_index_for(ds) is first
    assert isinstance(membership_index_for(dense), GroupMembershipIndex)


def test_memory_report_stays_under_structural_cap(dense):
    ds = sharded_over(dense, 100, max_resident_shards=2)
    index = ShardedMembershipIndex(ds)
    rng = np.random.default_rng(3)
    for _ in range(200):
        a, b = sorted(int(x) for x in rng.integers(0, 1_001, size=2))
        index.count(FEMALE, np.arange(a, b))
    report = index.memory_report()
    assert report["peak_tracked_bytes"] <= report["cap_bytes"]
    assert report["peak_tracked_bytes"] < dense_index_bytes(
        len(dense), dense.schema.n_attributes, 1
    )
    assert report["chunk_loads"] >= ds.n_shards  # at least the totals build


def test_out_of_range_queries_raise_instead_of_clamping(dense):
    """Out-of-range queries must raise OracleError on *both* substrates
    — never clamp, never wrap through numpy negative indexing."""
    for index in (
        ShardedMembershipIndex(sharded_over(dense, 137)),
        GroupMembershipIndex.for_dataset(dense),
    ):
        with pytest.raises(OracleError, match="outside dataset"):
            index.count(FEMALE, np.arange(990, 1_010))
        with pytest.raises(OracleError, match="outside dataset"):
            index.any_match(
                FEMALE, np.arange(990, 1_010), key=IndexKey.of_run(990, 1_010)
            )
        with pytest.raises(OracleError, match="out of range"):
            index.count(FEMALE, np.array([-5, 3], dtype=np.int64))
        with pytest.raises(OracleError, match="out of range"):
            index.any_match(FEMALE, np.array([3, 1_000], dtype=np.int64))
        with pytest.raises(OracleError, match="out of range"):
            index.matches(FEMALE, -1)
        with pytest.raises(OracleError, match="outside dataset"):
            index.any_match_runs(FEMALE, np.array([-1]), np.array([5]))
        with pytest.raises(OracleError):
            index.any_match_batch([(np.array([3, -2], dtype=np.int64), FEMALE)])


def test_invalid_predicate_validated_against_schema(dense):
    index = ShardedMembershipIndex(sharded_over(dense, 100))
    with pytest.raises(Exception):
        index.count(group(nonexistent="value"), np.arange(0, 10))


# ----------------------------------------------------------------------
# stats accounting under the thread pool (RPL007 satellite)
# ----------------------------------------------------------------------
def test_shard_stats_exact_under_threaded_totals_build(dense):
    """``ShardStats`` counters stay exact when chunk loads race on the
    executor's thread pool: each shard of a totals build is touched by
    exactly one task, so ``loads`` must equal ``n_shards`` — a single
    lost ``+= 1`` under contention breaks the equality."""
    for _ in range(5):  # repeat: a torn increment is probabilistic
        with ShardExecutor(mode="threads", max_workers=8) as executor:
            ds = sharded_over(dense, 25, max_resident_shards=3)
            index = ShardedMembershipIndex(ds, executor=executor)
            index.shard_totals(FEMALE)
            stats = ds.stats
            assert stats.loads == ds.n_shards
            assert stats.resident_shards == 3
            assert stats.evictions == stats.loads - stats.resident_shards
            assert stats.peak_resident_shards <= ds.max_resident_shards
            assert stats.resident_bytes <= stats.peak_resident_bytes


def test_shard_stats_identity_under_contended_same_shard_loads(dense):
    """Many raw threads hammering ``chunk()`` over a shard set larger
    than the residency cap: both loaders of a racing pair count (per the
    chunk() contract), so ``loads`` is not deterministic — but the
    conservation law ``loads - evictions == resident_shards`` and the
    byte ledger must hold exactly."""
    ds = sharded_over(dense, 50, max_resident_shards=4)
    barrier = threading.Barrier(8)

    def hammer(seed: int) -> None:
        order = np.random.default_rng(seed).permutation(ds.n_shards)
        barrier.wait()
        for _ in range(3):
            for shard in order:
                ds.chunk(int(shard))

    threads = [threading.Thread(target=hammer, args=(t,)) for t in range(8)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    stats = ds.stats
    assert stats.loads >= ds.n_shards  # every shard materialized at least once
    assert stats.resident_shards == 4
    assert stats.loads - stats.evictions == stats.resident_shards
    # 1000 rows / shard_size 50 → every shard is full-sized, so the byte
    # ledger is exactly 4 chunks of (50 × d) int16 codes.
    chunk_bytes = 50 * ds.schema.n_attributes * np.dtype(np.int16).itemsize
    assert stats.resident_bytes == 4 * chunk_bytes
    assert stats.resident_bytes <= stats.peak_resident_bytes
