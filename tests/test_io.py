"""Unit tests for report serialization."""

from __future__ import annotations

import json

import pytest

from repro.core import (
    classifier_coverage,
    group_coverage,
    intersectional_coverage,
    multiple_coverage,
)
from repro.crowd import GroundTruthOracle
from repro.data import (
    Group,
    Schema,
    binary_dataset,
    group,
    intersectional_dataset,
    single_attribute_dataset,
)
from repro.errors import InvalidParameterError
from repro.io import report_to_dict, report_to_json

FEMALE = group(gender="female")


class TestGroupCoverageExport:
    def test_roundtrips_through_json(self, rng):
        dataset = binary_dataset(500, 20, rng=rng)
        result = group_coverage(
            GroundTruthOracle(dataset), FEMALE, 50, n=25, dataset_size=500
        )
        payload = json.loads(report_to_json(result))
        assert payload["kind"] == "group-coverage"
        assert payload["covered"] is False
        assert payload["count"] == 20
        assert payload["count_is_exact"] is True
        assert payload["tasks"]["total"] == result.tasks.total
        assert len(payload["discovered_indices"]) == 20

    def test_covered_run_marks_count_as_bound(self, rng):
        dataset = binary_dataset(500, 200, rng=rng)
        result = group_coverage(
            GroundTruthOracle(dataset), FEMALE, 50, n=25, dataset_size=500
        )
        payload = report_to_dict(result)
        assert payload["covered"] is True
        assert payload["count_is_exact"] is False


class TestMultipleCoverageExport:
    def test_entries_and_supergroups(self, rng):
        counts = {"white": 2_000, "black": 30, "asian": 12}
        dataset = single_attribute_dataset(counts, attribute="race", rng=rng)
        report = multiple_coverage(
            GroundTruthOracle(dataset),
            [Group({"race": v}) for v in counts],
            50,
            rng=rng,
            dataset_size=len(dataset),
        )
        payload = report_to_dict(report)
        assert payload["kind"] == "multiple-coverage"
        assert len(payload["entries"]) == 3
        by_group = {entry["group"]: entry for entry in payload["entries"]}
        assert by_group["race=white"]["covered"] is True
        assert by_group["race=asian"]["covered"] is False
        json.dumps(payload)  # fully serializable


class TestIntersectionalExport:
    def test_mups_and_nested_reports(self, rng):
        schema = Schema.from_dict(
            {"gender": ["male", "female"], "race": ["white", "black"]}
        )
        dataset = intersectional_dataset(
            schema,
            {
                ("male", "white"): 2_000,
                ("female", "white"): 500,
                ("male", "black"): 90,
                ("female", "black"): 6,
            },
            rng=rng,
        )
        report = intersectional_coverage(
            GroundTruthOracle(dataset), schema, 50, rng=rng, dataset_size=len(dataset)
        )
        payload = report_to_dict(report)
        assert payload["kind"] == "intersectional-coverage"
        assert payload["mups"] == ["female-black"]
        assert payload["pattern_report"]["verdicts"]["female-black"]["covered"] is False
        assert payload["leaf_report"]["kind"] == "multiple-coverage"
        json.dumps(payload)


class TestClassifierExport:
    def test_strategy_and_fallback(self, rng):
        dataset = binary_dataset(1_000, 30, rng=rng)
        predicted = dataset.positions(FEMALE)[:20]
        result = classifier_coverage(
            GroundTruthOracle(dataset), FEMALE, 50, predicted, n=25, rng=rng,
            dataset_size=len(dataset),
        )
        payload = report_to_dict(result)
        assert payload["kind"] == "classifier-coverage"
        assert payload["strategy"] in ("partition", "label")
        assert payload["fallback"]["kind"] == "group-coverage"
        json.dumps(payload)


class TestValidation:
    def test_unsupported_type_rejected(self):
        with pytest.raises(InvalidParameterError):
            report_to_dict({"not": "a report"})
