"""Public-API sanity: imports, __all__ hygiene, and module doctests."""

from __future__ import annotations

import doctest
import importlib

import pytest

import repro

DOCTEST_MODULES = [
    "repro.core.group_coverage",
    "repro.core.base_coverage",
    "repro.core.sampling",
    "repro.core.aggregate",
    "repro.core.bounds",
    "repro.core.intersectional_coverage",
    "repro.core.cost_aware",
    "repro.core.resolution",
    "repro.patterns.search",
    "repro.classifiers.metrics",
    "repro.classifiers.simulated",
    "repro.data.schema",
    "repro.data.groups",
    "repro.data.synthetic",
    "repro.data.images",
    "repro.patterns.graph",
    "repro.patterns.tabular",
    "repro.experiments.reporting",
]


def test_version():
    assert repro.__version__ == "1.0.0"


def test_all_exports_resolve():
    for name in repro.__all__:
        assert hasattr(repro, name), f"repro.__all__ lists missing name {name!r}"


@pytest.mark.parametrize(
    "module_name",
    [
        "repro.audit",
        "repro.core",
        "repro.crowd",
        "repro.data",
        "repro.patterns",
        "repro.classifiers",
        "repro.downstream",
        "repro.experiments",
    ],
)
def test_subpackage_all_exports_resolve(module_name):
    module = importlib.import_module(module_name)
    for name in module.__all__:
        assert hasattr(module, name), f"{module_name}.__all__ lists {name!r}"


@pytest.mark.parametrize("module_name", DOCTEST_MODULES)
def test_module_doctests(module_name):
    module = importlib.import_module(module_name)
    failures, _ = doctest.testmod(module)
    assert failures == 0


def test_readme_quickstart_snippet():
    """The package docstring's quick tour must stay runnable."""
    failures, tested = doctest.testmod(repro)
    assert tested > 0
    assert failures == 0
