"""Unit tests for the interprocedural analysis core (``reprolint.analysis``).

The three layers get direct coverage here — project model (symbol
table), approximate call graph (direct / name-match / spawn edges), and
guarded dataflow — on small in-memory fixtures, independent of any
rule.  Rule-level behaviour is pinned in ``test_reprolint.py``.
"""

from __future__ import annotations

import sys
import textwrap
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]
sys.path.insert(0, str(REPO_ROOT / "tools"))

from reprolint.analysis import (  # noqa: E402
    build_call_graph,
    build_project,
    module_name_for,
    reachable,
    reached_unguarded,
)


def project_of(**files: str):
    """Build a :class:`ProjectModel` from ``path -> dedented source``."""
    return build_project(
        {path.replace("__", "/"): textwrap.dedent(body) for path, body in files.items()}
    )


def graph_of(**files: str):
    return build_call_graph(project_of(**files))


def edge_set(graph, kind=None):
    edges = [e for out in graph.edges.values() for e in out]
    if kind is not None:
        edges = [e for e in edges if e.kind == kind]
    return {(e.caller, e.callee) for e in edges}


# -- project model ------------------------------------------------------


def test_module_name_strips_src_tools_and_init():
    assert module_name_for("src/repro/engine/cache.py") == "repro.engine.cache"
    assert module_name_for("tools/reprolint/cli.py") == "reprolint.cli"
    assert module_name_for("src/repro/__init__.py") == "repro"


def test_model_records_classes_methods_and_nested_functions():
    project = project_of(
        **{
            "src__repro__m.py": """\
            class Base:
                def shared(self):
                    pass

            class Child(Base):
                def work(self):
                    def inner():
                        pass
                    return inner

            def top():
                pass
            """
        }
    )
    displays = {fn.display for fn in project.functions.values()}
    assert displays == {"Base.shared", "Child.work", "Child.work.<locals>.inner", "top"}
    child = project.resolve_class("Child")[0]
    # inherited lookup walks the named bases
    found = project.method_in_hierarchy(child, "shared")
    assert found is not None and found.display == "Base.shared"


def test_match_functions_supports_module_prefix_and_fnmatch():
    project = project_of(
        **{
            "src__repro__a.py": "def run_worker():\n    pass\n",
            "src__repro__b.py": "def run_worker():\n    pass\n",
        }
    )
    assert len(project.match_functions("run_*")) == 2
    scoped = project.match_functions("repro.a:run_worker")
    assert [fn.path for fn in scoped] == ["src/repro/a.py"]


# -- call graph: edge kinds --------------------------------------------


def test_self_method_call_resolves_direct_through_hierarchy():
    graph = graph_of(
        **{
            "src__repro__m.py": """\
            class Base:
                def flush(self):
                    pass

            class Child(Base):
                def step(self):
                    self.flush()
            """
        }
    )
    assert (
        "src/repro/m.py::Child.step",
        "src/repro/m.py::Base.flush",
    ) in edge_set(graph, kind="direct")


def test_attribute_call_falls_back_to_name_match_not_stoplist():
    graph = graph_of(
        **{
            "src__repro__m.py": """\
            class Store:
                def publish(self):
                    pass

            class User:
                def use(self, store):
                    store.publish()   # name-match: every project .publish
                    store.append(1)   # stoplist: builtin container verb
            """
        }
    )
    matched = edge_set(graph, kind="name-match")
    assert ("src/repro/m.py::User.use", "src/repro/m.py::Store.publish") in matched
    assert not any(callee.endswith("append") for _, callee in matched)


def test_cross_module_import_call_resolves_direct():
    graph = graph_of(
        **{
            "src__repro__util.py": "def helper():\n    pass\n",
            "src__repro__m.py": """\
            from repro.util import helper

            def caller():
                helper()
            """,
        }
    )
    assert (
        "src/repro/m.py::caller",
        "src/repro/util.py::helper",
    ) in edge_set(graph, kind="direct")


def test_executor_callbacks_become_spawn_edges_not_call_edges():
    graph = graph_of(
        **{
            "src__repro__m.py": """\
            class Runner:
                def task(self):
                    pass

                def run(self, pool):
                    pool.submit(self.task)

            def piecework(shard):
                pass

            def scatter(executor):
                executor.map(piecework, range(4))

            def spin():
                import threading
                threading.Thread(target=piecework).start()
            """
        }
    )
    spawned = {(e.caller, e.callee) for e in graph.spawns}
    assert ("src/repro/m.py::Runner.run", "src/repro/m.py::Runner.task") in spawned
    assert ("src/repro/m.py::scatter", "src/repro/m.py::piecework") in spawned
    assert ("src/repro/m.py::spin", "src/repro/m.py::piecework") in spawned
    # spawn targets are not synchronous callees
    assert ("src/repro/m.py::Runner.run", "src/repro/m.py::Runner.task") not in edge_set(
        graph
    )


def test_nested_callback_handed_to_executor_resolves():
    graph = graph_of(
        **{
            "src__repro__m.py": """\
            def outer(pool, data):
                def crunch(i):
                    return data[i]
                return pool.map(crunch, range(3))
            """
        }
    )
    assert [(e.caller, e.callee) for e in graph.spawns] == [
        ("src/repro/m.py::outer", "src/repro/m.py::outer.<locals>.crunch")
    ]


# -- dataflow: reachability and guard propagation ----------------------


_GUARD_FIXTURE = {
    "src__repro__m.py": """\
    import threading

    class Box:
        def __init__(self):
            self._lock = threading.Lock()
            self.n = 0

        def entry_locked(self):
            with self._lock:
                self._bump()

        def entry_bare(self):
            self._bump()

        def _bump(self):
            self.n += 1
    """
}


def test_lock_guard_at_call_site_protects_the_callee_subtree():
    graph = graph_of(**_GUARD_FIXTURE)
    protected = reached_unguarded(
        graph, ["src/repro/m.py::Box.entry_locked"], guard="lock"
    )
    assert "src/repro/m.py::Box._bump" not in protected


def test_one_unguarded_path_is_enough_to_reach_unguarded():
    graph = graph_of(**_GUARD_FIXTURE)
    hot = reached_unguarded(
        graph,
        ["src/repro/m.py::Box.entry_locked", "src/repro/m.py::Box.entry_bare"],
        guard="lock",
    )
    assert "src/repro/m.py::Box._bump" in hot


def test_reachable_respects_within_and_spawn_exclusion():
    graph = graph_of(
        **{
            "src__repro__core.py": """\
            from repro.far import away

            def pump(pool):
                step()
                away()
                pool.submit(task)

            def step():
                pass

            def task():
                pass
            """,
            "src__repro__far.py": "def away():\n    pass\n",
        }
    )
    closure = reachable(
        graph, ["src/repro/core.py::pump"], within=("src/repro/core*",)
    )
    assert "src/repro/core.py::step" in closure
    assert "src/repro/far.py::away" not in closure  # pruned by `within`
    assert "src/repro/core.py::task" not in closure  # spawn edge excluded
    with_spawns = reachable(
        graph, ["src/repro/core.py::pump"], include_spawns=True
    )
    assert "src/repro/core.py::task" in with_spawns


def test_try_fnf_guard_marks_calls_inside_the_try_body():
    graph = graph_of(
        **{
            "src__repro__m.py": """\
            def load(path):
                try:
                    return _read(path)
                except FileNotFoundError:
                    return None

            def _read(path):
                return path.read_text()
            """
        }
    )
    (edge,) = graph.out_edges("src/repro/m.py::load")
    assert edge.callee == "src/repro/m.py::_read"
    assert "fnf" in edge.guards
