"""reprolint test suite: each rule catches its seeded violation, passes
its clean counterpart, and the live repository lints clean.

Fixture tests write small files into ``tmp_path`` and run the engine
with a narrow, rule-specific config; the self-run test invokes
``python -m reprolint src`` exactly as CI does.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]
sys.path.insert(0, str(REPO_ROOT / "tools"))

from reprolint import Config, RuleScope, run_paths  # noqa: E402
from reprolint.cli import main as cli_main  # noqa: E402
from reprolint.findings import META_CODE  # noqa: E402


def lint(tmp_path: Path, files: dict[str, str], config: Config):
    """Write ``files`` under ``tmp_path`` and lint them with ``config``."""
    for name, body in files.items():
        target = tmp_path / name
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(textwrap.dedent(body))
    return run_paths([tmp_path], root=tmp_path, config=config)


def codes(result) -> list[str]:
    return [finding.code for finding in result.findings]


def scoped(code: str, **options) -> Config:
    """A config enabling one rule everywhere in the fixture tree."""
    return Config(rules=(RuleScope(code=code, options=options),))


# -- RPL001: determinism ------------------------------------------------


def test_rpl001_flags_random_module_and_wall_clock(tmp_path):
    result = lint(
        tmp_path,
        {
            "core.py": """\
            import random
            import time

            def jitter():
                return random.random() + time.time()
            """
        },
        scoped("RPL001"),
    )
    assert codes(result).count("RPL001") == 3  # import, call, wall clock
    assert any("random" in finding.message for finding in result.findings)


def test_rpl001_flags_unseeded_and_legacy_numpy_rng(tmp_path):
    result = lint(
        tmp_path,
        {
            "core.py": """\
            import numpy as np

            def sample():
                a = np.random.default_rng()
                b = np.random.rand(3)
                return a, b
            """
        },
        scoped("RPL001"),
    )
    assert codes(result) == ["RPL001", "RPL001"]


def test_rpl001_clean_on_seeded_rng(tmp_path):
    result = lint(
        tmp_path,
        {
            "core.py": """\
            import numpy as np

            def sample(seed):
                rng = np.random.default_rng(seed)
                return rng.integers(0, 10)
            """
        },
        scoped("RPL001"),
    )
    assert result.findings == ()


def test_rpl001_allow_wall_clock_is_per_path(tmp_path):
    files = {
        "serving/loop.py": """\
        import time

        def heartbeat():
            return time.time()
        """,
        "audit/core.py": """\
        import time

        def stamp():
            return time.time()
        """,
    }
    config = scoped("RPL001", allow_wall_clock=("serving/*",))
    result = lint(tmp_path, files, config)
    assert [finding.path for finding in result.findings] == ["audit/core.py"]


# -- RPL002: atomic writes ----------------------------------------------


def test_rpl002_flags_in_place_write(tmp_path):
    result = lint(
        tmp_path,
        {
            "store.py": """\
            def save(path, payload):
                with open(path, "w") as handle:
                    handle.write(payload)
            """
        },
        scoped("RPL002"),
    )
    assert codes(result) == ["RPL002"]
    assert "in place" in result.findings[0].message


def test_rpl002_flags_shared_scratch_name(tmp_path):
    result = lint(
        tmp_path,
        {
            "store.py": """\
            import os

            def save(path, payload):
                scratch = path + ".tmp"
                with open(scratch, "w") as handle:
                    handle.write(payload)
                os.replace(scratch, path)
            """
        },
        scoped("RPL002"),
    )
    assert codes(result) == ["RPL002"]
    assert "uniqueness" in result.findings[0].message


def test_rpl002_clean_on_unique_scratch_and_append(tmp_path):
    result = lint(
        tmp_path,
        {
            "store.py": """\
            import os
            import secrets

            def save(path, payload):
                scratch = f"{path}.tmp-{os.getpid()}-{secrets.token_hex(4)}"
                with open(scratch, "w") as handle:
                    handle.write(payload)
                os.replace(scratch, path)

            def log(path, line):
                with open(path, "a") as handle:
                    handle.write(line)
            """
        },
        scoped("RPL002"),
    )
    assert result.findings == ()


# -- RPL003: frozen specs with codec coverage ---------------------------


def test_rpl003_flags_unfrozen_dataclass(tmp_path):
    result = lint(
        tmp_path,
        {
            "spec.py": """\
            from dataclasses import dataclass

            @dataclass
            class Spec:
                tau: int

                def to_dict(self):
                    return {"tau": self.tau}

                @classmethod
                def from_dict(cls, data):
                    return cls(tau=data.get("tau"))
            """
        },
        scoped("RPL003"),
    )
    assert codes(result) == ["RPL003"]
    assert "frozen" in result.findings[0].message


def test_rpl003_flags_field_missing_from_codec(tmp_path):
    result = lint(
        tmp_path,
        {
            "spec.py": """\
            from dataclasses import dataclass

            @dataclass(frozen=True)
            class Spec:
                tau: int
                n: int

                def to_dict(self):
                    return {"tau": self.tau}

                @classmethod
                def from_dict(cls, data):
                    return cls(tau=data.get("tau"), n=50)
            """
        },
        scoped("RPL003"),
    )
    # ``n`` is covered by neither to_dict nor from_dict: two findings.
    assert codes(result) == ["RPL003", "RPL003"]
    assert all("Spec.n" in finding.message for finding in result.findings)


def test_rpl003_clean_with_aliases_and_classvars(tmp_path):
    result = lint(
        tmp_path,
        {
            "spec.py": """\
            from dataclasses import dataclass
            from typing import ClassVar

            @dataclass(frozen=True)
            class Spec:
                kind: ClassVar[str] = "spec"
                tau: int = 0
                digest: str = ""

                def to_dict(self):
                    return {"tau": self.tau, "hash": self.digest}

                @classmethod
                def from_dict(cls, data):
                    return cls(tau=data.get("tau"), digest=data.get("hash"))
            """
        },
        scoped("RPL003", field_aliases={"Spec": {"digest": "hash"}}),
    )
    assert result.findings == ()


def test_rpl003_codec_table_catches_unregistered_spec(tmp_path, monkeypatch):
    module_dir = tmp_path / "fakepkg"
    module_dir.mkdir()
    (module_dir / "__init__.py").write_text("")
    (module_dir / "specs.py").write_text(
        textwrap.dedent(
            """\
            from dataclasses import dataclass
            from typing import ClassVar

            @dataclass(frozen=True)
            class Registered:
                kind: ClassVar[str] = "registered"

                def to_dict(self):
                    return {}

                @classmethod
                def from_dict(cls, data):
                    return cls()

            @dataclass(frozen=True)
            class Orphan:
                kind: ClassVar[str] = "orphan"

                def to_dict(self):
                    return {}

                @classmethod
                def from_dict(cls, data):
                    return cls()

            TYPES = {Registered.kind: Registered}
            """
        )
    )
    monkeypatch.syspath_prepend(str(tmp_path))
    config = scoped(
        "RPL003",
        codec_tables={"fakepkg/specs.py": ("fakepkg.specs", "TYPES")},
    )
    result = run_paths([tmp_path], root=tmp_path, config=config)
    table_findings = [
        finding for finding in result.findings if "registered in" in finding.message
    ]
    assert len(table_findings) == 1
    assert "Orphan" in table_findings[0].message


def test_rpl003_codec_table_clean_on_live_spec_table(tmp_path):
    config = scoped(
        "RPL003",
        codec_tables={
            "src/repro/audit/specs.py": ("repro.audit.specs", "_SPEC_TYPES")
        },
    )
    result = run_paths(
        [REPO_ROOT / "src" / "repro" / "audit" / "specs.py"],
        root=REPO_ROOT,
        config=config,
    )
    assert not [f for f in result.findings if "registered in" in f.message]


# -- RPL004: decoder error contract -------------------------------------


def test_rpl004_flags_bare_subscript_in_decoder(tmp_path):
    result = lint(
        tmp_path,
        {
            "codec.py": """\
            def from_dict(data):
                return data["tau"]
            """
        },
        scoped("RPL004", decoder_names=("from_dict",)),
    )
    assert codes(result) == ["RPL004"]
    assert "'tau'" in result.findings[0].message


def test_rpl004_clean_on_guarded_subscript_and_get(tmp_path):
    result = lint(
        tmp_path,
        {
            "codec.py": """\
            class BadPayload(ValueError):
                pass

            def from_dict(data):
                try:
                    return data["tau"], data.get("n", 50)
                except KeyError as error:
                    raise BadPayload(str(error)) from error

            def _from_dict_helper(data):
                return data["tau"]  # private: the caller's guard covers it
            """
        },
        scoped("RPL004", decoder_names=("from_dict",)),
    )
    assert result.findings == ()


def test_rpl004_handler_must_reraise(tmp_path):
    result = lint(
        tmp_path,
        {
            "codec.py": """\
            def from_dict(data):
                try:
                    return data["tau"]
                except KeyError:
                    pass
                return None
            """
        },
        scoped("RPL004", decoder_names=("from_dict",)),
    )
    assert codes(result) == ["RPL004"]


# -- RPL005: checkpoint version stamps ----------------------------------


def test_rpl005_flags_unstamped_writer_and_blind_reader(tmp_path):
    result = lint(
        tmp_path,
        {
            "state.py": """\
            class Record:
                def to_dict(self):
                    return {"payload": 1}

                @classmethod
                def from_dict(cls, data):
                    return cls()
            """
        },
        scoped("RPL005"),
    )
    assert codes(result) == ["RPL005", "RPL005"]


def test_rpl005_clean_on_versioned_roundtrip_and_nested_exemption(tmp_path):
    result = lint(
        tmp_path,
        {
            "state.py": """\
            class Record:
                def to_dict(self):
                    return {"version": 2, "payload": 1}

                @classmethod
                def from_dict(cls, data):
                    if data.get("version") != 2:
                        raise ValueError("bad version")
                    return cls()

            class Event:
                def to_dict(self):
                    return {"stage": "x"}

                @classmethod
                def from_dict(cls, data):
                    return cls()
            """
        },
        scoped("RPL005", nested_payloads=("Event",)),
    )
    assert result.findings == ()


# -- RPL006: docstring contract -----------------------------------------


def test_rpl006_flags_undocumented_export(tmp_path, monkeypatch):
    module_dir = tmp_path / "docpkg"
    module_dir.mkdir()
    (module_dir / "__init__.py").write_text(
        textwrap.dedent(
            '''\
            """A documented module."""

            __all__ = ["documented", "bare"]


            def documented():
                """Documented with an example, at proper length.

                >>> documented()
                """


            def bare():
                pass
            '''
        )
    )
    monkeypatch.syspath_prepend(str(tmp_path))
    config = scoped("RPL006", modules=("docpkg",))
    result = run_paths([tmp_path], root=tmp_path, config=config)
    assert codes(result) == ["RPL006"]
    assert "docpkg.bare" in result.findings[0].message


# -- suppressions -------------------------------------------------------


def test_suppression_silences_finding_with_reason(tmp_path):
    result = lint(
        tmp_path,
        {
            "core.py": """\
            import time

            def stamp():
                return time.time()  # reprolint: disable=RPL001 (profiling only)
            """
        },
        scoped("RPL001"),
    )
    assert result.findings == ()


def test_standalone_suppression_covers_next_line(tmp_path):
    result = lint(
        tmp_path,
        {
            "core.py": """\
            import time

            def stamp():
                # reprolint: disable=RPL001 (profiling only)
                return time.time()
            """
        },
        scoped("RPL001"),
    )
    assert result.findings == ()


def test_file_wide_suppression(tmp_path):
    result = lint(
        tmp_path,
        {
            "core.py": """\
            # reprolint: disable-file=RPL001 (legacy experiment script)
            import time

            def stamp():
                return time.time()
            """
        },
        scoped("RPL001"),
    )
    assert result.findings == ()


def test_unused_suppression_is_reported(tmp_path):
    result = lint(
        tmp_path,
        {
            "core.py": """\
            def stamp():
                return 0  # reprolint: disable=RPL001 (stale directive)
            """
        },
        scoped("RPL001"),
    )
    assert codes(result) == [META_CODE]
    assert "unused suppression" in result.findings[0].message


def test_suppression_without_reason_is_malformed(tmp_path):
    result = lint(
        tmp_path,
        {
            "core.py": """\
            import time

            def stamp():
                return time.time()  # reprolint: disable=RPL001
            """
        },
        scoped("RPL001"),
    )
    # The directive is rejected AND the finding it failed to silence stays.
    assert sorted(codes(result)) == [META_CODE, "RPL001"]
    assert any("no reason" in finding.message for finding in result.findings)


def test_meta_findings_cannot_be_suppressed(tmp_path):
    result = lint(
        tmp_path,
        {
            "core.py": """\
            x = 1  # reprolint: disable=RPL000 (nice try)
            """
        },
        scoped("RPL001"),
    )
    assert codes(result) == [META_CODE]
    assert "cannot be suppressed" in result.findings[0].message


def test_directive_inside_string_literal_is_ignored(tmp_path):
    result = lint(
        tmp_path,
        {
            "core.py": """\
            DOC = "# reprolint: disable=RPL001 (not a real directive)"
            """
        },
        scoped("RPL001"),
    )
    assert result.findings == ()


# -- engine and CLI -----------------------------------------------------


def test_syntax_error_reports_meta_finding(tmp_path):
    result = lint(tmp_path, {"broken.py": "def f(:\n"}, scoped("RPL001"))
    assert codes(result) == [META_CODE]
    assert "cannot parse" in result.findings[0].message


def test_out_of_scope_files_are_not_checked(tmp_path):
    config = Config(rules=(RuleScope(code="RPL001", include=("core/*",)),))
    result = lint(
        tmp_path,
        {
            "core/a.py": "import random\n",
            "scripts/b.py": "import random\n",
        },
        config,
    )
    assert [finding.path for finding in result.findings] == ["core/a.py"]


def test_cli_json_output_and_exit_code(tmp_path, capsys):
    (tmp_path / "core.py").write_text("import random\n")
    # findings -> exit 1, parseable JSON
    code = cli_main(
        ["--root", str(tmp_path), "--format", "json", str(tmp_path)]
    )
    payload = json.loads(capsys.readouterr().out)
    assert code == 0  # fixture tree is outside every DEFAULT scope
    assert payload["files_scanned"] == 1


def test_cli_list_rules(capsys):
    assert cli_main(["--list-rules"]) == 0
    output = capsys.readouterr().out
    for rule in (
        "RPL001", "RPL002", "RPL003", "RPL004", "RPL005", "RPL006",
        "RPL007", "RPL008", "RPL009", "RPL010",
    ):
        assert rule in output


# -- the live repository is clean ---------------------------------------


def test_self_run_live_repo_is_clean():
    """``python -m reprolint src`` — the CI gate — passes on this tree."""
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [str(REPO_ROOT / "src"), str(REPO_ROOT / "tools")]
    )
    proc = subprocess.run(
        [sys.executable, "-m", "reprolint", "--format", "json", "src"],
        cwd=REPO_ROOT,
        env=env,
        capture_output=True,
        text=True,
        timeout=300,
    )
    payload = json.loads(proc.stdout)
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert payload["findings"] == []
    assert payload["files_scanned"] > 50


def test_self_run_fails_on_seeded_violation(tmp_path):
    """The gate actually gates: a planted violation flips the exit code."""
    bad = tmp_path / "src" / "repro" / "planted.py"
    bad.parent.mkdir(parents=True)
    bad.write_text("import random\n")
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [str(REPO_ROOT / "src"), str(REPO_ROOT / "tools")]
    )
    proc = subprocess.run(
        [
            sys.executable,
            "-m",
            "reprolint",
            "--root",
            str(tmp_path),
            str(bad),
        ],
        cwd=tmp_path,
        env=env,
        capture_output=True,
        text=True,
        timeout=60,
    )
    assert proc.returncode == 1, proc.stdout + proc.stderr
    assert "RPL001" in proc.stdout


@pytest.mark.parametrize(
    "module",
    ["repro.audit.specs", "repro.serving.protocol", "repro.audit.report"],
)
def test_fixed_decoders_raise_library_errors(module):
    """The PR's src fixes hold: malformed payloads raise ReproError."""
    import importlib

    from repro.errors import ReproError

    mod = importlib.import_module(module)
    targets = {
        "repro.audit.specs": lambda: mod.GroupAuditSpec.from_dict(
            {"tau": 1, "n": 1, "view": None}
        ),
        "repro.serving.protocol": lambda: mod.Submission.from_dict(
            {"version": 1, "tenant": "t"}
        ),
        "repro.audit.report": lambda: mod.AuditReport.from_dict(
            {"version": 1, "entries": []}
        ),
    }
    with pytest.raises(ReproError):
        targets[module]()


# -- RPL007: thread-shared mutation -------------------------------------


def test_rpl007_flags_unlocked_mutation_on_spawned_path(tmp_path):
    result = lint(
        tmp_path,
        {
            "tally.py": """\
            import threading
            from concurrent.futures import ThreadPoolExecutor

            class Tally:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.count = 0

                def bump(self):
                    self.count += 1

                def bump_locked(self):
                    with self._lock:
                        self.count += 1

                def run(self):
                    with ThreadPoolExecutor() as pool:
                        pool.submit(self.bump)
                        pool.submit(self.bump_locked)
            """
        },
        scoped("RPL007"),
    )
    assert codes(result) == ["RPL007"]
    assert "self.count" in result.findings[0].message
    assert "Tally.bump" in result.findings[0].message


def test_rpl007_lock_held_at_call_site_protects_the_callee(tmp_path):
    result = lint(
        tmp_path,
        {
            "tally.py": """\
            import threading

            class Tally:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.count = 0

                def _merge(self):
                    self.count += 1      # guarded by every caller

                def on_done(self):
                    with self._lock:
                        self._merge()

                def run(self):
                    threading.Thread(target=self.on_done).start()
            """
        },
        scoped("RPL007"),
    )
    assert result.findings == ()


def test_rpl007_instance_per_thread_class_is_exempt(tmp_path):
    files = {
        "handler.py": """\
        import threading

        class Handler:
            def handle(self):
                self.n_requests = 1

            def serve(self):
                threading.Thread(target=self.handle).start()
        """
    }
    assert codes(lint(tmp_path, dict(files), scoped("RPL007"))) == ["RPL007"]
    clean = lint(
        tmp_path, files, scoped("RPL007", instance_per_thread=("Handler",))
    )
    assert clean.findings == ()


def test_rpl007_thread_roots_seed_reachability_without_a_spawn_site(tmp_path):
    result = lint(
        tmp_path,
        {
            "gateway.py": """\
            class Gateway:
                def do_GET(self):
                    self.hits += 1
            """
        },
        scoped("RPL007", thread_roots=("Gateway.do_GET",)),
    )
    assert codes(result) == ["RPL007"]


# -- RPL008: rng-stream discipline --------------------------------------


def test_rpl008_flags_mid_path_mint_and_module_level_generator(tmp_path):
    result = lint(
        tmp_path,
        {
            "session.py": """\
            import numpy as np

            _RNG = np.random.default_rng(0)

            class Session:
                def run(self, rng):
                    return fresh() + shared()

            def fresh():
                return np.random.default_rng(7).random()

            def shared():
                return _RNG.random()
            """
        },
        scoped("RPL008", entry_points=("Session.run",)),
    )
    assert sorted(codes(result)) == ["RPL008", "RPL008"]
    messages = " ".join(finding.message for finding in result.findings)
    assert "default_rng" in messages and "_RNG" in messages


def test_rpl008_entry_point_factories_and_unreachable_mints_are_clean(tmp_path):
    result = lint(
        tmp_path,
        {
            "session.py": """\
            import numpy as np

            class Session:
                def resume(self, seed):
                    rng = np.random.default_rng(seed)   # sanctioned factory
                    return helper(rng)

            def helper(rng):
                return rng.random()

            def offline():
                return np.random.default_rng(3)         # not on an audit path
            """
        },
        scoped(
            "RPL008",
            entry_points=("Session.resume",),
            rng_factories=("Session.resume",),
        ),
    )
    assert result.findings == ()


# -- RPL009: serving file protocol --------------------------------------


def test_rpl009_flags_raw_write_and_intolerant_read(tmp_path):
    result = lint(
        tmp_path,
        {
            "store.py": """\
            import json
            import os

            def _write_atomic(path, payload):
                scratch = path.with_suffix(".tmp")
                scratch.write_text(json.dumps(payload))
                os.replace(scratch, path)

            def save(path, payload):
                path.write_text(json.dumps(payload))   # raw write

            def load(path):
                return json.loads(path.read_text())    # intolerant read
            """
        },
        scoped("RPL009", atomic_helpers=("_write_atomic",)),
    )
    assert sorted(codes(result)) == ["RPL009", "RPL009"]
    messages = " ".join(finding.message for finding in result.findings)
    assert "atomic-write helper" in messages
    assert "FileNotFoundError" in messages


def test_rpl009_interprocedural_fnf_guard_covers_the_read_helper(tmp_path):
    result = lint(
        tmp_path,
        {
            "store.py": """\
            import json
            import os

            def _write_atomic(path, payload):
                scratch = path.with_suffix(".tmp")
                scratch.write_text(json.dumps(payload))
                os.replace(scratch, path)

            def _read(path):
                return json.loads(path.read_text())

            def load(path):
                try:
                    return _read(path)
                except FileNotFoundError:
                    return None
            """
        },
        scoped("RPL009", atomic_helpers=("_write_atomic",)),
    )
    assert result.findings == ()


def test_rpl009_claim_must_use_link_or_rename(tmp_path):
    files = {
        "board.py": """\
        import json
        import os

        def _write_atomic(path, payload):
            scratch = path.with_suffix(".tmp")
            scratch.write_text(json.dumps(payload))
            os.replace(scratch, path)

        def try_claim(path, worker):
            _write_atomic(path, {"owner": worker})   # clobbering
        """
    }
    result = lint(
        tmp_path, dict(files), scoped("RPL009", atomic_helpers=("_write_atomic",))
    )
    assert codes(result) == ["RPL009"]
    assert "link-or-rename" in result.findings[0].message

    good = {
        "board.py": """\
        import os

        def try_claim(path, worker):
            os.link(path, path.with_suffix(f".{worker}"))
        """
    }
    assert lint(tmp_path, good, scoped("RPL009")).findings == ()


# -- RPL010: nonblocking engine core ------------------------------------


def test_rpl010_flags_sleep_and_bare_join_in_the_pump_closure(tmp_path):
    result = lint(
        tmp_path,
        {
            "engine.py": """\
            import time

            class Engine:
                def pump(self):
                    self._step()

                def _step(self):
                    time.sleep(0.01)
                    self.worker.join()

                def drain(self):
                    time.sleep(1.0)    # fine: not reachable from pump
            """
        },
        scoped("RPL010", entry_points=("Engine.pump",)),
    )
    assert sorted(codes(result)) == ["RPL010", "RPL010"]
    messages = " ".join(finding.message for finding in result.findings)
    assert "time.sleep" in messages and "join" in messages


def test_rpl010_spawn_edges_and_path_joins_do_not_count(tmp_path):
    result = lint(
        tmp_path,
        {
            "engine.py": """\
            import os
            import time

            class Engine:
                def pump(self, pool):
                    pool.submit(self._background)   # handing off is the point
                    return os.path.join("a", "b")   # not a thread join

                def _background(self):
                    time.sleep(0.5)                 # runs on the pool thread
            """
        },
        scoped("RPL010", entry_points=("Engine.pump",)),
    )
    assert result.findings == ()


# -- suppression attachment: spans --------------------------------------


def test_suppression_on_decorator_line_covers_the_decorated_def(tmp_path):
    result = lint(
        tmp_path,
        {
            "spec.py": """\
            from dataclasses import dataclass

            @dataclass  # reprolint: disable=RPL003 (fixture: mutability is the point)
            class Spec:
                tau: int

                def to_dict(self):
                    return {"tau": self.tau}

                @classmethod
                def from_dict(cls, data):
                    return cls(tau=data.get("tau"))
            """
        },
        scoped("RPL003"),
    )
    assert result.findings == ()


def test_suppression_on_any_line_of_a_multiline_statement_covers_it(tmp_path):
    result = lint(
        tmp_path,
        {
            "core.py": """\
            import numpy as np

            rng = np.random.default_rng(
            )  # reprolint: disable=RPL001 (fixture: entropy wanted here)
            """
        },
        scoped("RPL001"),
    )
    assert result.findings == ()


def test_suppression_on_def_line_does_not_silence_the_body(tmp_path):
    result = lint(
        tmp_path,
        {
            "core.py": """\
            import time

            def stamp():  # reprolint: disable=RPL001 (should not reach the body)
                return time.time()
            """
        },
        scoped("RPL001"),
    )
    assert "RPL001" in codes(result)  # the body finding survives
    assert META_CODE in codes(result)  # and the directive reports unused


# -- CLI: baseline mode -------------------------------------------------


def test_cli_baseline_records_then_suppresses_with_line_drift(tmp_path, capsys):
    # Plant the file under src/repro/ so the DEFAULT RPL001 scope applies.
    target = tmp_path / "src" / "repro" / "planted.py"
    target.parent.mkdir(parents=True)
    target.write_text("import random\n")
    baseline = tmp_path / "baseline.json"
    config_args = ["--root", str(tmp_path), str(target)]

    assert cli_main(config_args) == 1  # live finding without a baseline
    capsys.readouterr()
    assert cli_main(["--baseline", str(baseline), "--update-baseline", *config_args]) == 0
    recorded = json.loads(baseline.read_text())
    assert [entry["code"] for entry in recorded["findings"]] == ["RPL001"]
    capsys.readouterr()

    # Re-running against the recorded baseline is clean.
    assert cli_main(["--baseline", str(baseline), *config_args]) == 0
    captured = capsys.readouterr()
    assert "stale" not in captured.err

    # Line drift: shift the finding down two lines; the baseline
    # (path + code + message, no line) still matches.
    target.write_text("# moved\n# down\nimport random\n")
    assert cli_main(["--baseline", str(baseline), *config_args]) == 0
    capsys.readouterr()


def test_cli_baseline_reports_stale_entries(tmp_path, capsys):
    baseline = tmp_path / "baseline.json"
    baseline.write_text(
        json.dumps(
            {
                "findings": [
                    {
                        "path": "gone.py",
                        "code": "RPL001",
                        "message": "this finding no longer exists",
                    }
                ]
            }
        )
    )
    target = tmp_path / "core.py"
    target.write_text("x = 1\n")
    code = cli_main(["--root", str(tmp_path), "--baseline", str(baseline), str(target)])
    captured = capsys.readouterr()
    assert code == 0
    assert "stale baseline entry" in captured.err
    assert "gone.py" in captured.err


def test_cli_update_baseline_requires_baseline_path(tmp_path):
    with pytest.raises(SystemExit):
        cli_main(["--update-baseline", str(tmp_path)])
