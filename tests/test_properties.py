"""Property-based tests (hypothesis) for the core invariants.

These are the strongest correctness guarantees in the suite: for *any*
dataset composition, placement, and parameterization, the crowdsourced
algorithms must agree with ground truth and respect their cost bounds.
"""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.classifiers.metrics import BinaryConfusion
from repro.classifiers.simulated import solve_confusion
from repro.core.aggregate import aggregate_groups, expected_count
from repro.core.base_coverage import base_coverage
from repro.core.classifier_coverage import classifier_coverage
from repro.core.group_coverage import group_coverage
from repro.core.sampling import LabeledPool
from repro.core.tree import PrunableQueue, TreeNode
from repro.crowd.aggregation import majority_vote
from repro.crowd.oracle import GroundTruthOracle
from repro.data.dataset import LabeledDataset
from repro.data.groups import Group, group
from repro.data.schema import Schema
from repro.data.synthetic import intersectional_dataset
from repro.patterns.combiner import LeafCoverage, combine_leaf_coverage
from repro.patterns.graph import PatternGraph
from repro.patterns.tabular import assess_tabular_coverage

FEMALE = group(gender="female")
GENDER_SCHEMA = Schema.from_dict({"gender": ["male", "female"]})


def dataset_from_bools(members: list[bool]) -> LabeledDataset:
    codes = np.array(members, dtype=np.int16).reshape(-1, 1)
    return LabeledDataset(GENDER_SCHEMA, codes)


# ----------------------------------------------------------------------
# Group-Coverage (Algorithm 1)
# ----------------------------------------------------------------------
@settings(max_examples=120, deadline=None)
@given(
    members=st.lists(st.booleans(), min_size=1, max_size=200),
    n=st.integers(min_value=1, max_value=64),
    tau=st.integers(min_value=0, max_value=64),
)
def test_group_coverage_verdict_matches_ground_truth(members, n, tau):
    dataset = dataset_from_bools(members)
    oracle = GroundTruthOracle(dataset)
    result = group_coverage(oracle, FEMALE, tau, n=n, dataset_size=len(dataset))
    true_count = sum(members)

    # Verdict correctness (Lemma 3.1).
    assert result.covered == (true_count >= tau)
    # The reported count never overstates the truth.
    assert result.count <= true_count
    if result.covered:
        assert result.count == tau
    else:
        # Exact count for uncovered groups (needed by Pattern-Combiner).
        assert result.count == true_count
        assert sorted(result.discovered_indices) == [
            i for i, m in enumerate(members) if m
        ]

    # Cost bounds: uncovered runs must touch every chunk; every run stays
    # under the concrete ceiling ceil(N/n) + tau * (2*ceil(log2 n) + 1).
    n_chunks = math.ceil(len(members) / n)
    if not result.covered and tau > 0:
        assert result.tasks.total >= n_chunks
    depth = math.ceil(math.log2(n)) if n > 1 else 0
    assert result.tasks.total <= n_chunks + tau * (2 * depth + 1)


@settings(max_examples=60, deadline=None)
@given(
    members=st.lists(st.booleans(), min_size=1, max_size=120),
    n=st.integers(min_value=1, max_value=32),
    tau=st.integers(min_value=0, max_value=32),
)
def test_base_coverage_verdict_and_cost(members, n, tau):
    dataset = dataset_from_bools(members)
    oracle = GroundTruthOracle(dataset)
    result = base_coverage(oracle, FEMALE, tau, dataset_size=len(dataset))
    true_count = sum(members)
    assert result.covered == (true_count >= tau)
    if tau == 0:
        assert result.tasks.total == 0
    elif result.covered:
        # Stops exactly at the tau-th member's position.
        positions = [i for i, m in enumerate(members) if m]
        assert result.tasks.total == positions[tau - 1] + 1
    else:
        assert result.tasks.total == len(members)


@settings(max_examples=60, deadline=None)
@given(
    members=st.lists(st.booleans(), min_size=1, max_size=150),
    n=st.integers(min_value=2, max_value=64),
    tau=st.integers(min_value=1, max_value=40),
)
def test_group_coverage_never_beats_information_bound(members, n, tau):
    """Sanity: certifying coverage needs >= tau set queries with yes
    answers; our count lower bound implies tasks >= tau when covered."""
    dataset = dataset_from_bools(members)
    result = group_coverage(
        GroundTruthOracle(dataset), FEMALE, tau, n=n, dataset_size=len(dataset)
    )
    if result.covered:
        assert result.tasks.total >= tau


# ----------------------------------------------------------------------
# Pattern-Combiner vs tabular brute force
# ----------------------------------------------------------------------
@st.composite
def small_schema_and_counts(draw):
    n_attributes = draw(st.integers(min_value=1, max_value=3))
    cards = [draw(st.integers(min_value=2, max_value=3)) for _ in range(n_attributes)]
    schema = Schema.from_dict(
        {
            f"a{i}": [f"v{i}_{j}" for j in range(card)]
            for i, card in enumerate(cards)
        }
    )
    graph = PatternGraph(schema)
    counts = {
        tuple(leaf.values): draw(st.integers(min_value=0, max_value=80))
        for leaf in graph.leaves()
    }
    tau = draw(st.integers(min_value=1, max_value=60))
    return schema, counts, tau


@settings(max_examples=60, deadline=None)
@given(small_schema_and_counts())
def test_pattern_combiner_matches_tabular_reference(case):
    schema, counts, tau = case
    dataset = intersectional_dataset(schema, counts, shuffle=False)
    graph = PatternGraph(schema)
    reference = assess_tabular_coverage(dataset, tau, graph=graph)

    # Feed the combiner what a perfect Group-Coverage pass would report.
    leaf_results = {}
    for leaf in graph.leaves():
        count = counts[tuple(leaf.values)]
        leaf_results[leaf] = LeafCoverage(
            covered=count >= tau, count=min(count, tau) if count >= tau else count
        )
    report = combine_leaf_coverage(graph, leaf_results, tau)

    for pattern in graph:
        assert report.verdict(pattern).covered == reference.verdict(pattern).covered
    assert set(report.mups) == set(reference.mups)
    # MUP maximality: parents covered, children of MUPs uncovered.
    for mup in report.mups:
        assert all(report.verdict(p).covered for p in graph.parents(mup))
        for child in graph.children(mup):
            assert not report.verdict(child).covered


# ----------------------------------------------------------------------
# Aggregate (Algorithm 6)
# ----------------------------------------------------------------------
@settings(max_examples=60, deadline=None)
@given(
    sampled=st.lists(st.integers(min_value=0, max_value=30), min_size=2, max_size=6),
    tau=st.integers(min_value=1, max_value=80),
    dataset_size=st.integers(min_value=10, max_value=5000),
)
def test_aggregate_partitions_and_respects_tau(sampled, tau, dataset_size):
    pool = LabeledPool()
    index = 0
    groups = []
    for i, count in enumerate(sampled):
        value = f"g{i}"
        groups.append(Group({"race": value}))
        for _ in range(count):
            pool.add(index, {"race": value})
            index += 1
    supers = aggregate_groups(pool, dataset_size, tau, groups)

    # Partition: every group appears in exactly one super-group.
    flattened = [member for s in supers for member in s]
    assert sorted(g.describe() for g in flattened) == sorted(
        g.describe() for g in groups
    )
    # Merge invariant: a non-singleton super-group's expected total < tau.
    for s in supers:
        if len(s) > 1:
            total = sum(expected_count(pool, member, dataset_size) for member in s)
            assert total < tau


# ----------------------------------------------------------------------
# Classifier-Coverage (Algorithm 4)
# ----------------------------------------------------------------------
@settings(max_examples=50, deadline=None)
@given(
    members=st.lists(st.booleans(), min_size=2, max_size=150),
    predicted=st.data(),
    tau=st.integers(min_value=1, max_value=30),
    n=st.integers(min_value=2, max_value=32),
)
def test_classifier_coverage_verdict_for_arbitrary_predictions(
    members, predicted, tau, n
):
    dataset = dataset_from_bools(members)
    prediction_mask = predicted.draw(
        st.lists(st.booleans(), min_size=len(members), max_size=len(members))
    )
    predicted_indices = np.flatnonzero(np.array(prediction_mask, dtype=bool))
    result = classifier_coverage(
        GroundTruthOracle(dataset),
        FEMALE,
        tau,
        predicted_indices,
        n=n,
        rng=np.random.default_rng(0),
        dataset_size=len(dataset),
    )
    assert result.covered == (sum(members) >= tau)
    if not result.covered:
        assert result.count == sum(members)


# ----------------------------------------------------------------------
# Crowd primitives
# ----------------------------------------------------------------------
@settings(max_examples=80, deadline=None)
@given(st.lists(st.booleans(), min_size=1, max_size=15))
def test_majority_vote_matches_counting(answers):
    winner = majority_vote(answers)
    true_count = sum(answers)
    false_count = len(answers) - true_count
    if true_count > false_count:
        assert winner is True
    elif false_count > true_count:
        assert winner is False
    else:
        assert winner is answers[0]  # deterministic tie-break: first seen


@settings(max_examples=50, deadline=None)
@given(
    st.lists(
        st.tuples(st.sampled_from(["add", "pop", "remove"]), st.integers(0, 9)),
        max_size=60,
    )
)
def test_prunable_queue_matches_list_model(operations):
    """Model-based test: the queue must behave like a plain list under
    interleaved add/pop/remove."""
    queue = PrunableQueue()
    model: list[TreeNode] = []
    pool = [TreeNode(i, i) for i in range(10)]
    for op, arg in operations:
        node = pool[arg]
        if op == "add":
            if node in model:
                with pytest.raises(Exception):
                    queue.add(node)
            else:
                queue.add(node)
                model.append(node)
        elif op == "pop":
            if model:
                assert queue.pop() is model.pop(0)
            else:
                with pytest.raises(IndexError):
                    queue.pop()
        else:  # remove
            if node in model:
                queue.remove(node)
                model.remove(node)
            else:
                with pytest.raises(Exception):
                    queue.remove(node)
        assert len(queue) == len(model)


# ----------------------------------------------------------------------
# Confusion-profile solver
# ----------------------------------------------------------------------
@settings(max_examples=80, deadline=None)
@given(
    tp=st.integers(min_value=0, max_value=200),
    fp=st.integers(min_value=0, max_value=200),
    fn=st.integers(min_value=0, max_value=200),
    tn=st.integers(min_value=0, max_value=200),
)
def test_solve_confusion_roundtrip(tp, fp, fn, tn):
    """Any realizable confusion's (accuracy, precision) must be re-solvable
    to a confusion with the same metrics."""
    if tp + fp + fn + tn == 0:
        return
    original = BinaryConfusion(tp=tp, fp=fp, fn=fn, tn=tn)
    solved = solve_confusion(
        original.n_positive,
        fp + tn,
        accuracy=original.accuracy,
        precision=original.precision,
        tolerance=0.01,
    )
    assert abs(solved.accuracy - original.accuracy) <= 0.01
    assert abs(solved.precision - original.precision) <= 0.01
