"""Unit tests for the Table 3 experiment settings."""

from __future__ import annotations

import pytest

from repro.errors import InvalidParameterError
from repro.experiments.settings import (
    intersectional_schema,
    intersectional_settings,
    multi_group_setting_for_sigma,
    multi_group_settings,
)

TAU = 50


class TestMultiGroupSettings:
    def test_four_regimes(self):
        settings = multi_group_settings()
        assert [s.name for s in settings] == [
            "effective 1", "effective 2", "ineffective", "adversarial",
        ]
        assert all(s.n_total == 10_000 for s in settings)

    def test_effective1_semantics(self):
        setting = multi_group_settings()[0]
        minorities = [c for v, c in setting.counts.items() if v != "majority"]
        assert all(c < TAU for c in minorities)  # each uncovered
        assert sum(minorities) < TAU  # union uncovered

    def test_effective2_semantics(self):
        setting = multi_group_settings()[1]
        minorities = [c for v, c in setting.counts.items() if v != "majority"]
        assert all(c >= TAU for c in minorities)  # each covered

    def test_ineffective_semantics(self):
        setting = multi_group_settings()[2]
        minorities = sorted(
            c for v, c in setting.counts.items() if v != "majority"
        )
        assert minorities[0] < TAU and minorities[1] < TAU  # 2 uncovered
        assert minorities[2] >= TAU  # 1 covered

    def test_adversarial_semantics(self):
        setting = multi_group_settings()[3]
        minorities = [c for v, c in setting.counts.items() if v != "majority"]
        assert all(c < TAU for c in minorities)  # each uncovered
        assert sum(minorities) >= TAU  # union covered -> penalty


class TestSigmaSettings:
    @pytest.mark.parametrize("sigma", [2, 3, 4, 5, 6])
    def test_composition_is_effective(self, sigma):
        setting = multi_group_setting_for_sigma(sigma)
        assert len(setting.counts) == sigma
        minorities = [c for v, c in setting.counts.items() if v != "majority"]
        assert len(minorities) == sigma - 1
        assert all(0 < c < TAU for c in minorities)
        assert sum(minorities) < TAU

    def test_invalid_sigma(self):
        with pytest.raises(InvalidParameterError):
            multi_group_setting_for_sigma(1)


class TestIntersectionalSettings:
    @pytest.mark.parametrize("cards", [(2, 2, 2), (2, 4)])
    def test_totals_and_regimes(self, cards):
        settings = intersectional_settings(cards)
        assert [s.name for s in settings] == [
            "effective 1", "effective 2", "ineffective", "adversarial",
        ]
        for setting in settings:
            assert setting.n_total == 10_000
            assert len(setting.joint_counts) == 8  # both schemas: 8 leaves

    def test_effective1_minority_mass(self):
        setting = intersectional_settings((2, 2, 2))[0]
        small = [c for c in setting.joint_counts.values() if c < TAU]
        assert sum(small) < TAU

    def test_adversarial_minority_mass(self):
        setting = intersectional_settings((2, 2, 2))[3]
        small = [c for c in setting.joint_counts.values() if c < TAU]
        assert sum(small) >= TAU

    def test_schema_builder(self):
        schema = intersectional_schema((2, 4))
        assert schema.cardinalities == (2, 4)
        assert schema.names == ("x1", "x2")
