"""Unit tests for the ASCII reporting helpers."""

from __future__ import annotations

import pytest

from repro.errors import InvalidParameterError
from repro.experiments.reporting import render_series, render_table


class TestRenderTable:
    def test_alignment(self):
        text = render_table(["name", "n"], [["a", 1], ["bbbb", 22]])
        lines = text.splitlines()
        assert lines[0].startswith("name")
        assert all("|" in line for line in (lines[0], lines[2], lines[3]))

    def test_title(self):
        text = render_table(["x"], [[1]], title="My Table")
        assert text.splitlines()[0] == "My Table"

    def test_float_formatting(self):
        text = render_table(["v"], [[3.14159265]])
        assert "3.142" in text

    def test_empty_rows_ok(self):
        text = render_table(["a", "b"], [])
        assert "a" in text

    def test_width_mismatch_rejected(self):
        with pytest.raises(InvalidParameterError):
            render_table(["a", "b"], [[1]])

    def test_empty_headers_rejected(self):
        with pytest.raises(InvalidParameterError):
            render_table([], [])


class TestRenderSeries:
    def test_series_columns(self):
        text = render_series("x", [1, 2], {"ya": [10, 20], "yb": [30, 40]})
        lines = text.splitlines()
        assert "ya" in lines[0] and "yb" in lines[0]
        assert "10" in lines[2] and "40" in lines[3]

    def test_length_mismatch_rejected(self):
        with pytest.raises(InvalidParameterError):
            render_series("x", [1, 2], {"y": [1]})
