"""Smoke tests for the experiment runners (reduced parameters).

The full-scale runs live in benchmarks/; these only verify the runners
execute, return the right shapes, and uphold their core invariants.
"""

from __future__ import annotations

import pytest

from repro.errors import InvalidParameterError
from repro.experiments.figure7 import run_figure7a, run_figure7c
from repro.experiments.figure7_intersectional import run_figure7h
from repro.experiments.figure7_multi import compare_on_setting
from repro.experiments.harness import average_over_trials, trial_rngs
from repro.experiments.settings import multi_group_settings
from repro.experiments.table1 import run_table1
from repro.experiments.table2 import run_table2


class TestHarness:
    def test_trial_rngs_are_independent_and_deterministic(self):
        first = trial_rngs(1, 3)
        second = trial_rngs(1, 3)
        assert len(first) == 3
        for a, b in zip(first, second):
            assert a.random() == b.random()

    def test_average_over_trials(self):
        value = average_over_trials(lambda rng: 2.0, seed=0, n_trials=4)
        assert value == 2.0

    def test_invalid_trials(self):
        with pytest.raises(InvalidParameterError):
            trial_rngs(0, 0)


class TestTableRunners:
    def test_table1_shape(self):
        rows = run_table1(seed=3)
        assert len(rows) == 3
        assert all(row.verdict_correct for row in rows)
        assert all(row.upper_bound_hits == 115 for row in rows)

    def test_table2_single_trial(self):
        rows = run_table2(seed=3, n_trials=1)
        assert len(rows) == 9
        assert all(row.verdict_correct for row in rows)
        strategies = {row.strategy for row in rows}
        assert strategies == {"partition", "label"}


class TestSweepRunners:
    def test_figure7a_small(self):
        result = run_figure7a(
            n_trials=1, n_total=2_000, tau=10, n=20, f_values=[0, 10, 20]
        )
        assert result.x_values == (0.0, 10.0, 20.0)
        assert len(result.group_coverage_tasks) == 3
        # f=0: exactly one query per chunk (all roots answer "no").
        assert result.group_coverage_tasks[0] == 2_000 / 20
        # Denser groups stop earlier: f=2*tau costs at most f=tau.
        assert result.group_coverage_tasks[2] <= result.group_coverage_tasks[1]

    def test_figure7c_small(self):
        result = run_figure7c(
            n_trials=1, n_total=2_000, tau=10, n_values=[1, 10, 100]
        )
        # n=1 degenerates to one query per object (most expensive).
        assert result.group_coverage_tasks[0] > result.group_coverage_tasks[-1]

    def test_figure7e_single_setting(self):
        comparison = compare_on_setting(
            multi_group_settings(n_total=2_000)[0], seed=5, n_trials=1, tau=50, n=50
        )
        assert comparison.verdicts_agree
        assert comparison.multiple_coverage_tasks > 0

    def test_figure7h_small(self):
        comparisons = run_figure7h(n_trials=1)
        assert len(comparisons) == 2
        assert all(c.verdicts_agree for c in comparisons)
