"""Smoke tests for the experiments CLI."""

from __future__ import annotations

import pytest

from repro.experiments.cli import RUNNERS, main


def test_runner_registry_covers_every_artifact():
    expected = {
        "table1", "table2", "fig6",
        "fig7a", "fig7b", "fig7c", "fig7d",
        "fig7e", "fig7f", "fig7g", "fig7h",
        "ablations",
    }
    assert set(RUNNERS) == expected


def test_main_runs_table1(capsys):
    assert main(["table1", "--seed", "3"]) == 0
    output = capsys.readouterr().out
    assert "Table 1" in output
    assert "Group-Cvg #HITs" in output
    assert "[table1 finished" in output


def test_main_runs_multiple_experiments(capsys):
    assert main(["table1", "table2", "--trials", "1"]) == 0
    output = capsys.readouterr().out
    assert "Table 1" in output and "Table 2" in output


def test_main_rejects_unknown_experiment():
    with pytest.raises(SystemExit):
        main(["not-an-experiment"])
