"""Micro-benchmarks of the hot primitives.

These measure library throughput itself (not paper numbers): oracle query
latency, predicate mask caching, the prunable queue, and a full
Group-Coverage run at the paper's default parameters. Useful for catching
performance regressions in the substrate.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.group_coverage import group_coverage
from repro.core.tree import PrunableQueue, TreeNode
from repro.crowd.oracle import GroundTruthOracle
from repro.data.groups import group
from repro.data.synthetic import binary_dataset

FEMALE = group(gender="female")


@pytest.fixture(scope="module")
def dataset():
    return binary_dataset(100_000, 500, rng=np.random.default_rng(0))


def test_set_query_throughput(benchmark, dataset):
    oracle = GroundTruthOracle(dataset)
    indices = np.arange(0, 50)
    oracle.ask_set(indices, FEMALE)  # warm the mask cache

    benchmark(oracle.ask_set, indices, FEMALE)


def test_point_query_throughput(benchmark, dataset):
    oracle = GroundTruthOracle(dataset)
    benchmark(oracle.ask_point, 12345)


def test_mask_cache_hit(benchmark, dataset):
    dataset.mask(FEMALE)  # warm
    benchmark(dataset.mask, FEMALE)


def test_prunable_queue_churn(benchmark):
    def churn():
        queue = PrunableQueue()
        nodes = [TreeNode(i, i + 1) for i in range(0, 2000, 2)]
        for node in nodes:
            queue.add(node)
        for node in nodes[::2]:
            queue.remove(node)
        drained = 0
        while queue:
            queue.pop()
            drained += 1
        return drained

    assert benchmark(churn) == 500


def test_group_coverage_run(benchmark, dataset):
    def run():
        oracle = GroundTruthOracle(dataset)
        return group_coverage(
            oracle, FEMALE, 50, n=50, dataset_size=len(dataset)
        ).tasks.total

    tasks = benchmark(run)
    assert tasks > 0
