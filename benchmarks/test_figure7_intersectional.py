"""Bench F7f/F7h — Intersectional-Coverage vs brute force.

Asserts:

* 7f — effective settings beat (or match) per-leaf brute force, the
  adversarial setting loses, verdicts agree, and the expected MUPs appear.
* 7h — (2,2,2) and (2,4) have the same number of fully-specified
  subgroups (8) and hence similar costs: "the only important feature is
  the cardinality of the attributes rather than the number of attributes".
"""

from __future__ import annotations

from repro.experiments.figure7_intersectional import (
    render_intersectional_comparisons,
    run_figure7f,
    run_figure7h,
)


def test_figure7f(once):
    comparisons = once(run_figure7f, n_trials=5)
    print()
    print(render_intersectional_comparisons(
        comparisons, title="Figure 7f — intersectional groups (2x2x2)"
    ))
    by_name = {c.label: c for c in comparisons}
    assert all(c.verdicts_agree for c in comparisons)
    assert by_name["effective 1"].speedup > 1.0
    assert by_name["adversarial"].speedup < 1.05
    # Uncovered minorities must surface as MUPs.
    assert by_name["effective 1"].mean_n_mups >= 1
    assert by_name["effective 2"].mean_n_mups == 0


def test_figure7h(once):
    comparisons = once(run_figure7h, n_trials=5)
    print()
    print(render_intersectional_comparisons(
        comparisons, title="Figure 7h — intersectional schemas (2x2x2) vs (2x4)"
    ))
    assert all(c.verdicts_agree for c in comparisons)
    a, b = comparisons
    # Equal leaf counts -> similar costs (within 40% of each other).
    ratio = a.intersectional_tasks / b.intersectional_tasks
    assert 0.6 <= ratio <= 1.6
