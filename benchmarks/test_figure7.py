"""Bench F7a–F7d — regenerate the Group-Coverage performance sweeps.

Each bench prints the figure's three series (Group-Coverage,
Base-Coverage, UpperBound) and asserts the paper's qualitative shape:

* 7a — tasks peak near ``f = tau`` and fall off on both sides; the
  baseline needs orders of magnitude more tasks around the peak.
* 7b — cost grows ~linearly in ``tau`` and stays near (below) the bound.
* 7c — cost collapses as ``n`` grows away from point queries, then
  flattens (the logarithmic regime).
* 7d — cost grows linearly with ``N`` but stays below 6 % of it.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.figure7 import (
    render_sweep,
    run_figure7a,
    run_figure7b,
    run_figure7c,
    run_figure7d,
)


def test_figure7a(once):
    result = once(run_figure7a, n_trials=3)
    print()
    print(render_sweep(result))
    tasks = np.array(result.group_coverage_tasks)
    x = np.array(result.x_values)
    tau = 50
    peak_region = tasks[(x >= tau - 10) & (x <= tau + 10)].max()
    # Peak near f = tau dominates the extremes on both sides.
    assert peak_region >= tasks[x == 0][0]
    assert peak_region >= tasks[x == 2 * tau][0]
    # Base-Coverage needs ~N tasks around the peak; Group-Coverage wins
    # by a wide margin everywhere.
    base = np.array(result.base_coverage_tasks)
    assert (tasks[1:] < base[1:]).all()
    assert base[x == tau - 10][0] > 20 * peak_region


def test_figure7b(once):
    result = once(run_figure7b, n_trials=3)
    print()
    print(render_sweep(result))
    tasks = np.array(result.group_coverage_tasks)
    # Monotone-ish growth in tau: the last point clearly exceeds the first.
    assert tasks[-1] > tasks[0]
    # The baseline effectively labels the whole dataset in this worst case
    # (tau = 1 stops at the first member, ~N/2 in expectation; from tau=10
    # on, nearly all N objects get labeled).
    base = np.array(result.base_coverage_tasks)
    x = np.array(result.x_values)
    assert (base[x >= 10] > 0.9 * 100_000).all()


def test_figure7c(once):
    result = once(run_figure7c, n_trials=3)
    print()
    print(render_sweep(result))
    x = list(result.x_values)
    tasks = list(result.group_coverage_tasks)
    # Sharp drop from point-query-sized sets to n >= 20...
    assert tasks[x.index(1.0)] > 10 * tasks[x.index(20.0)]
    # ...then a flat logarithmic regime: n=50 vs n=400 within 3x.
    assert tasks[x.index(400.0)] < 3 * tasks[x.index(50.0)]


def test_figure7d(once):
    result = once(run_figure7d, n_trials=3)
    print()
    print(render_sweep(result))
    for N, tasks in zip(result.x_values, result.group_coverage_tasks):
        assert tasks <= 0.06 * N or N <= 1_000, (
            f"N={N}: {tasks} tasks exceeds the paper's 6% envelope"
        )
    # Linear growth: doubling N should not much more than double the cost.
    tasks = np.array(result.group_coverage_tasks)
    x = np.array(result.x_values)
    big = tasks[x == 1_000_000][0] / tasks[x == 100_000][0]
    assert 4 <= big <= 20  # 10x more data -> ~10x more tasks
