"""Reliability benchmark: adaptive assignment routing vs fixed fan-out.

The paper's crowd model publishes every set HIT to a *fixed* number of
workers (``assignments_per_hit``, default 3) and majority-votes the
answers. This harness measures what the online worker-reliability
subsystem (:mod:`repro.crowd.reliability`) buys on the *spend* axis: it
runs the same group audits over the same spammy worker pool

* **fixed** — classic fan-out: every HIT costs exactly
  ``assignments_per_hit`` paid assignments, majority vote decides, and
* **adaptive** — :class:`~repro.crowd.reliability.AdaptiveAssignmentPolicy`:
  votes stream in one at a time from reliability-ranked workers and stop
  as soon as the streaming Dawid–Skene posterior clears a calibrated
  log-odds threshold; quarantined workers are excluded and probed.

Both arms run behind a :class:`~repro.crowd.backends.LatencyModelBackend`
(simulated per-worker latency on a virtual clock) with a pool containing
at least 20% uniform spammers. The harness asserts that every audit
verdict matches the ground-truth reference in both arms and that the
adaptive arm cuts paid assignments and worker payments by at least 25%.
It also re-checks kill/resume conformance: a reliability-enabled service
job abandoned mid-run and revived from its job store must reproduce the
uninterrupted verdicts and task counts without re-asking a single paid
query.

Results land in ``BENCH_reliability.json``; CI runs this script on every
push. Full run::

    PYTHONPATH=src python benchmarks/bench_reliability.py
"""

from __future__ import annotations

import argparse
import json
import tempfile
import time

import numpy as np

from repro.audit import GroupAuditSpec
from repro.crowd.backends import LatencyModelBackend
from repro.crowd.oracle import CrowdOracle, GroundTruthOracle
from repro.crowd.platform import CrowdPlatform
from repro.crowd.reliability import AdaptiveAssignmentPolicy
from repro.crowd.workers import make_worker_pool
from repro.data.groups import group
from repro.data.synthetic import binary_dataset
from repro.errors import BudgetExceededError
from repro.service import AuditService, DirectoryJobStore

DEFAULT_TAU = 60
DEFAULT_WORKERS = 20
DEFAULT_SPAMMER_FRACTION = 0.25
LOG_ODDS_THRESHOLD = 3.5
SAVING_TARGET = 0.25

SPECS = (
    GroupAuditSpec(predicate=group(gender="female"), tau=DEFAULT_TAU),
    GroupAuditSpec(predicate=group(gender="male"), tau=DEFAULT_TAU),
)


def build_pool(n_workers: int, spammer_fraction: float):
    return make_worker_pool(
        n_workers,
        np.random.default_rng(3),
        error_rate=0.03,
        spammer_fraction=spammer_fraction,
        spammer_error_rate=0.45,
    )


def build_oracle(dataset, n_workers: int, spammer_fraction: float, adaptive: bool):
    reliability = (
        AdaptiveAssignmentPolicy(log_odds_threshold=LOG_ODDS_THRESHOLD)
        if adaptive
        else None
    )
    platform = CrowdPlatform(
        dataset,
        build_pool(n_workers, spammer_fraction),
        np.random.default_rng(11),
        reliability=reliability,
    )
    return CrowdOracle(platform)


def run_arm(dataset, specs, *, n_workers: int, spammer_fraction: float,
            adaptive: bool) -> dict:
    """One benchmark arm: all audits over a latency-model crowd."""
    oracle = build_oracle(dataset, n_workers, spammer_fraction, adaptive)
    service = AuditService(
        oracle,
        backend=lambda proxy: LatencyModelBackend(
            proxy, rng=np.random.default_rng(1234)
        ),
        max_active_jobs=len(specs),
    )
    started = time.perf_counter()
    with service:
        handles = [service.submit(spec) for spec in specs]
        service.drain()
        reports = [handle.result() for handle in handles]
        makespan = service.backend.clock.now()
        reliability_report = service.reliability_report()
    real_seconds = time.perf_counter() - started
    row = {
        "arm": "adaptive" if adaptive else "fixed",
        "tasks": oracle.ledger.total,
        "hits": oracle.platform.ledger.n_hits,
        "assignments": oracle.platform.ledger.n_assignments,
        "worker_payments": oracle.platform.ledger.worker_payments,
        "total_cost": oracle.platform.ledger.total_cost,
        "virtual_makespan_seconds": makespan,
        "real_seconds": real_seconds,
        "verdicts": [
            {"covered": report.result.covered, "count": report.result.count}
            for report in reports
        ],
    }
    if reliability_report is not None:
        row["reliability"] = {
            "n_workers": reliability_report.n_workers,
            "n_quarantined": reliability_report.n_quarantined,
            "n_probes": reliability_report.n_probes,
            "mean_votes_per_hit": reliability_report.mean_votes_per_hit,
        }
    return row


def reference_verdicts(dataset, specs) -> list[dict]:
    """Ground-truth verdicts the crowd arms must reproduce."""
    oracle = GroundTruthOracle(dataset)
    with AuditService(oracle, max_active_jobs=len(specs)) as service:
        handles = [service.submit(spec) for spec in specs]
        service.drain()
        return [
            {
                "covered": handle.result().result.covered,
                "count": handle.result().result.count,
            }
            for handle in handles
        ]


def check_kill_resume(dataset, specs, *, n_workers: int,
                      spammer_fraction: float) -> dict:
    """Abandon a reliability-enabled service mid-run, revive it from the
    store onto a fresh platform, and demand bit-identical results."""
    reference_oracle = build_oracle(dataset, n_workers, spammer_fraction, True)
    with AuditService(reference_oracle, seed=9) as service:
        handles = [service.submit(spec) for spec in specs]
        service.drain()
        reference = [handle.result() for handle in handles]
    reference_state = reference_oracle.platform.reliability.state_dict()

    with tempfile.TemporaryDirectory() as scratch:
        store = DirectoryJobStore(scratch)
        killed_oracle = build_oracle(dataset, n_workers, spammer_fraction, True)
        budget = max(1, reference_oracle.ledger.total // 2)
        service = AuditService(
            killed_oracle, job_store=store, task_budget=budget, seed=9
        )
        with service:
            for spec in specs:
                service.submit(spec)
            try:
                service.drain()
            except BudgetExceededError:
                pass
        fresh_oracle = build_oracle(dataset, n_workers, spammer_fraction, True)
        revived = AuditService.resume(store, fresh_oracle, task_budget=None)
        with revived:
            revived.drain()
            resumed = [handle.result() for handle in revived.jobs()]

    for ours, theirs in zip(resumed, reference):
        assert ours.result.covered == theirs.result.covered, "verdict drift"
        assert ours.result.count == theirs.result.count, "count drift"
    assert (
        fresh_oracle.platform.reliability.state_dict() == reference_state
    ), "estimator state drift after resume"
    reasked = (
        killed_oracle.ledger.total
        + fresh_oracle.ledger.total
        - reference_oracle.ledger.total
    )
    assert reasked == 0, f"{reasked} paid queries re-asked after resume"
    return {
        "tasks": reference_oracle.ledger.total,
        "tasks_before_kill": killed_oracle.ledger.total,
        "reasked_paid_queries": reasked,
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--workers", type=int, default=DEFAULT_WORKERS)
    parser.add_argument(
        "--spammer-fraction", type=float, default=DEFAULT_SPAMMER_FRACTION
    )
    parser.add_argument("--out", default="BENCH_reliability.json")
    args = parser.parse_args()
    if args.spammer_fraction < 0.2:
        parser.error("--spammer-fraction must be >= 0.2 (the acceptance bar)")

    dataset = binary_dataset(2_000, 25, rng=np.random.default_rng(7))
    print(
        f"reliability benchmark: {len(SPECS)} group audits, tau={DEFAULT_TAU}, "
        f"{args.workers} workers, {args.spammer_fraction:.0%} spammers"
    )

    reference = reference_verdicts(dataset, SPECS)
    arms = {}
    for adaptive in (False, True):
        row = run_arm(
            dataset, SPECS, n_workers=args.workers,
            spammer_fraction=args.spammer_fraction, adaptive=adaptive,
        )
        ours = [verdict["covered"] for verdict in row["verdicts"]]
        truth = [verdict["covered"] for verdict in reference]
        assert ours == truth, (
            f"{row['arm']} arm diverged from ground-truth coverage verdicts: "
            f"{ours} vs {truth}"
        )
        arms[row["arm"]] = row
        extra = ""
        if "reliability" in row:
            r = row["reliability"]
            extra = (
                f", {r['n_quarantined']}/{r['n_workers']} quarantined, "
                f"{r['mean_votes_per_hit']:.2f} votes/HIT"
            )
        print(
            f"  {row['arm']:>8}: {row['assignments']:>6} assignments, "
            f"${row['total_cost']:.2f}, {row['tasks']} tasks{extra}"
        )

    fixed, adaptive = arms["fixed"], arms["adaptive"]
    assignment_saving = 1 - adaptive["assignments"] / fixed["assignments"]
    payment_saving = 1 - adaptive["worker_payments"] / fixed["worker_payments"]
    print(
        f"  spend reduction: {assignment_saving:.1%} assignments, "
        f"{payment_saving:.1%} payments (target >= {SAVING_TARGET:.0%}) "
        f"at identical verdicts"
    )
    assert assignment_saving >= SAVING_TARGET, (
        f"assignment saving {assignment_saving:.1%} below the "
        f"{SAVING_TARGET:.0%} target"
    )
    assert payment_saving >= SAVING_TARGET, (
        f"payment saving {payment_saving:.1%} below the "
        f"{SAVING_TARGET:.0%} target"
    )

    conformance = check_kill_resume(
        dataset, SPECS, n_workers=args.workers,
        spammer_fraction=args.spammer_fraction,
    )
    print(
        f"  kill/resume ok: {conformance['tasks_before_kill']}/"
        f"{conformance['tasks']} tasks before the kill, "
        f"{conformance['reasked_paid_queries']} re-asked after resume"
    )

    payload = {
        "benchmark": "reliability-adaptive assignment routing",
        "n_audits": len(SPECS),
        "tau": DEFAULT_TAU,
        "dataset_size": len(dataset),
        "n_workers": args.workers,
        "spammer_fraction": args.spammer_fraction,
        "log_odds_threshold": LOG_ODDS_THRESHOLD,
        "fixed": fixed,
        "adaptive": adaptive,
        "assignment_saving": assignment_saving,
        "payment_saving": payment_saving,
        "saving_target": SAVING_TARGET,
        "kill_resume": conformance,
    }
    with open(args.out, "w") as sink:
        json.dump(payload, sink, indent=2)
    print(f"  wrote {args.out}")


if __name__ == "__main__":
    main()
