"""Bench F6 — regenerate Figure 6 (downstream disparity vs re-added samples).

Runs the drowsiness (6a) and gender (6b) protocols and asserts the
paper's qualitative claims:

* with the group uncovered (0 added) there is a real accuracy and loss
  disparity against that group,
* re-adding uncovered samples shrinks the disparity monotonically from
  first to last point.

Scale note: this bench uses the "fast" configuration (3 repeats, capped
training sets). Pass ``REPRO_FIG6_SCALE=paper`` via the environment to run
the paper-scale protocol (10 repeats, full 26 K training sets).
"""

from __future__ import annotations

import os

from repro.experiments.figure6 import render_figure6, run_figure6


def test_figure6(once):
    scale = os.environ.get("REPRO_FIG6_SCALE", "fast")
    result = once(run_figure6, scale=scale)
    print()
    print(render_figure6(result))

    for curve in (result.drowsiness, result.gender):
        first, last = curve.points[0], curve.points[-1]
        assert first.accuracy_disparity > 0.01, (
            f"{curve.experiment}: expected a visible base disparity, "
            f"got {first.accuracy_disparity:.4f}"
        )
        assert first.loss_disparity > 0.0
        assert last.accuracy_disparity < first.accuracy_disparity
        assert last.loss_disparity < first.loss_disparity
        assert curve.is_monotonically_improving(slack=0.005)
