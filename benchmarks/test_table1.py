"""Bench T1 — regenerate Table 1 (MTurk female-coverage, 3 QC settings).

Prints the measured HIT counts next to the paper's, and asserts the
reproduction's qualitative claims:

* Group-Coverage lands within the paper's HIT range and far below both
  the baseline and the ``N/n + tau*log10(n)`` bound,
* every verdict is correct despite noisy workers,
* majority vote keeps the aggregated error negligible.
"""

from __future__ import annotations

from repro.experiments.table1 import PAPER_TABLE1, render_table1, run_table1


def test_table1(once):
    rows = once(run_table1)
    print()
    print(render_table1(rows))

    for row in rows:
        paper_group, paper_base, paper_bound = PAPER_TABLE1[row.qc_label]
        assert row.verdict_correct, f"{row.qc_label}: wrong coverage verdict"
        assert row.upper_bound_hits == paper_bound
        # Group-Coverage must stay well below both baseline and bound, and
        # in the paper's ballpark (paper: 71-75 HITs).
        assert row.group_coverage_hits < row.base_coverage_hits
        assert row.group_coverage_hits < row.upper_bound_hits
        assert 0.7 * paper_group <= row.group_coverage_hits <= 1.3 * paper_group
        # Base-Coverage: expected ~tau * N / (#females) point queries.
        assert 0.6 * paper_base <= row.base_coverage_hits <= 1.6 * paper_base
