"""Benches A1–A3 — ablations on the design choices DESIGN.md calls out."""

from __future__ import annotations

from repro.experiments.ablations import (
    render_ablation_aggregation,
    render_ablation_sampling_budget,
    render_ablation_set_size,
    render_ablation_worker_bias,
    run_ablation_aggregation,
    run_ablation_sampling_budget,
    run_ablation_set_size,
    run_ablation_worker_bias,
)


def test_ablation_set_size(once):
    """A1: larger set queries cost fewer tasks but degrade verdict accuracy
    once per-answer error grows with set size."""
    points = once(run_ablation_set_size)
    print()
    print(render_ablation_set_size(points))
    # Cost falls sharply from tiny to medium sets.
    assert points[0].mean_tasks > 3 * points[3].mean_tasks
    # Small, low-error sets keep verdicts essentially perfect.
    assert points[0].verdict_accuracy >= 0.9
    # Accuracy at the largest (noisiest) size should not beat the smallest.
    assert points[-1].verdict_accuracy <= points[0].verdict_accuracy


def test_ablation_aggregation(once):
    """A2: Dawid-Skene matches or beats majority vote as pools get spammy."""
    comparisons = once(run_ablation_aggregation)
    print()
    print(render_ablation_aggregation(comparisons))
    for comparison in comparisons:
        assert comparison.dawid_skene_errors <= comparison.majority_errors + 2
    # In the clean pool both schemes are near-perfect.
    assert comparisons[0].majority_errors <= 2


def test_ablation_sampling_budget(once):
    """A3: some sampling helps on the effective setting; verdicts stay
    correct across the sweep."""
    points = once(run_ablation_sampling_budget)
    print()
    print(render_ablation_sampling_budget(points))
    assert all(p.verdicts_correct for p in points)
    by_c = {p.c: p.mean_tasks for p in points}
    # The paper's c=2 beats no sampling at all on this setting.
    assert by_c[2.0] < by_c[0.0]


def test_ablation_worker_bias(once):
    """A6: systematic anti-minority bias breaks point-query pipelines even
    under majority vote; set-query pipelines stay correct."""
    points = once(run_ablation_worker_bias)
    print()
    print(render_ablation_worker_bias(points))
    clean, *biased = points
    assert clean.base_coverage_accuracy >= 0.9
    assert clean.group_coverage_accuracy >= 0.9
    for point in biased:
        assert point.group_coverage_accuracy >= point.base_coverage_accuracy
    # At heavy bias the baseline collapses while Group-Coverage holds.
    heavy = points[-1]
    assert heavy.base_coverage_accuracy <= 0.5
    assert heavy.group_coverage_accuracy >= 0.9
