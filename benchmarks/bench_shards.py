"""Out-of-core scale benchmark: audits over datasets larger than memory.

Runs group / multiple / intersectional coverage audits at N ∈ {1M, 10M}
over a :class:`~repro.data.sharded.ShardedDataset` whose code chunks are
*generated on demand* (seeded per shard) and evicted LRU — the full
``(N, d)`` matrix never exists. Three guarantees are asserted per row:

* **bit-identity** — at sizes up to ``--dense-cap`` (default 1M) the
  same chunks are concatenated into a dense
  :class:`~repro.data.dataset.LabeledDataset` and the audit re-run over
  the dense index: verdicts AND task counts must match exactly;
* **structural memory bound** — the sharded path's tracked peak
  (resident chunks + prefix tables + totals) never exceeds its
  configuration cap (LRU + worker-held chunk budget, twice the
  residency cap, plus the prefix-cache budget), and that cap stays below
  :func:`~repro.data.sharded.dense_index_bytes` — what the dense index
  would need resident for the same workload;
* **completion at 10M** — the group audit finishes at N = 10M with the
  cap several times under the dense requirement.

Results land in ``BENCH_shards.json``. Full sweep::

    PYTHONPATH=src python benchmarks/bench_shards.py

CI smoke slice (N = 1M split into exactly 2 shards)::

    PYTHONPATH=src python benchmarks/bench_shards.py \
        --sizes 1000000 --shard-size 500000 --resident-shards 1 \
        --out BENCH_shards.json
"""

from __future__ import annotations

import argparse
import json
import resource
import time

import numpy as np

from repro.audit import (
    AuditSession,
    GroupAuditSpec,
    IntersectionalAuditSpec,
    MultipleAuditSpec,
)
from repro.crowd.oracle import GroundTruthOracle
from repro.data.dataset import LabeledDataset
from repro.data.groups import group
from repro.data.schema import Schema
from repro.data.sharded import (
    ShardedDataset,
    ShardedMembershipIndex,
    ShardExecutor,
    dense_index_bytes,
)

DEFAULT_SIZES = (1_000_000, 10_000_000)
DEFAULT_TAU = 50
DEFAULT_RESIDENT = 2
#: Above this N the dense comparison run is skipped (the dense index
#: would need the memory the sharded path exists to avoid).
DEFAULT_DENSE_CAP = 1_000_000

GENDER_SCHEMA = Schema.from_dict({"gender": ["male", "female"]})
RACE_SCHEMA = Schema.from_dict({"race": ["white", "black", "asian", "other"]})
JOINT_SCHEMA = Schema.from_dict(
    {"gender": ["male", "female"], "race": ["white", "black"]}
)


def _shard_rng(seed: int, case_tag: int, shard_index: int) -> np.random.Generator:
    return np.random.default_rng(np.random.SeedSequence([seed, case_tag, shard_index]))


def _make_group_case(n_objects: int, tau: int, seed: int):
    """Binary minority drawn i.i.d. at ~0.8·tau expected members."""
    p_minority = 0.8 * tau / n_objects

    def chunk(shard_index: int, start: int, stop: int) -> np.ndarray:
        rng = _shard_rng(seed, 11, shard_index)
        column = rng.random(stop - start) < p_minority
        return column.astype(np.int16).reshape(-1, 1)

    spec = GroupAuditSpec(predicate=group(gender="female"), tau=tau)
    return GENDER_SCHEMA, chunk, spec


def _make_multiple_case(n_objects: int, tau: int, seed: int):
    p_minority = 0.8 * tau / n_objects
    weights = np.array(
        [1.0 - 3 * p_minority, p_minority, p_minority, p_minority]
    )

    def chunk(shard_index: int, start: int, stop: int) -> np.ndarray:
        rng = _shard_rng(seed, 23, shard_index)
        column = rng.choice(4, size=stop - start, p=weights)
        return column.astype(np.int16).reshape(-1, 1)

    spec = MultipleAuditSpec(
        groups=tuple(group(race=value) for value in RACE_SCHEMA.attribute("race").values),
        tau=tau,
    )
    return RACE_SCHEMA, chunk, spec


def _make_intersectional_case(n_objects: int, tau: int, seed: int):
    p_minority = 0.8 * tau / n_objects
    # Flat codes over (gender, race): male/white majority, female/white
    # comfortably covered, both black cells near the threshold.
    weights = np.array(
        [1.0 - 4 * tau / n_objects - 2 * p_minority,
         p_minority,
         4 * tau / n_objects,
         p_minority]
    )

    def chunk(shard_index: int, start: int, stop: int) -> np.ndarray:
        rng = _shard_rng(seed, 37, shard_index)
        flat = rng.choice(4, size=stop - start, p=weights)
        return np.column_stack([flat // 2, flat % 2]).astype(np.int16)

    spec = IntersectionalAuditSpec(schema=JOINT_SCHEMA, tau=tau)
    return JOINT_SCHEMA, chunk, spec


CASES = {
    "group": _make_group_case,
    "multiple": _make_multiple_case,
    "intersectional": _make_intersectional_case,
}


def _scrub_costs(payload):
    """Drop cost counters (``tasks``, ``engine_stats``) at every nesting
    level: engine mode legitimately spends differently (speculation,
    per-stepper attribution), so verdict fingerprints must compare
    substance — coverage bits, counts, discovered members, MUPs — only.
    Task equality is asserted separately where modes make it exact."""
    if isinstance(payload, dict):
        return {
            key: _scrub_costs(value)
            for key, value in payload.items()
            if key not in ("tasks", "engine_stats")
        }
    if isinstance(payload, list):
        return [_scrub_costs(item) for item in payload]
    return payload


def _fingerprint(result) -> str:
    """Kind-agnostic verdict fingerprint built from the lossless codec."""
    from repro.audit.serialization import result_to_dict

    return json.dumps(_scrub_costs(result_to_dict(result)), sort_keys=True)


def _timed_session(oracle, spec, *, engine: bool, seed: int):
    started = time.perf_counter()
    with AuditSession(oracle, engine=True if engine else None, seed=seed) as session:
        report = session.run(spec)
    (entry,) = report.entries
    return {
        "seconds": round(time.perf_counter() - started, 6),
        "tasks": report.tasks.total,
        "set_queries": report.tasks.n_set_queries,
        "point_queries": report.tasks.n_point_queries,
        "round_trips": report.tasks.n_rounds,
    }, entry.result


def run_case(
    audit: str,
    n_objects: int,
    tau: int,
    *,
    seed: int,
    shard_size: int | None,
    resident: int,
    executor_mode: str,
    dense_cap: int,
) -> dict:
    schema, chunk, spec = CASES[audit](n_objects, tau, seed)
    size = shard_size if shard_size is not None else max(1, n_objects // 8)
    row: dict = {
        "audit": audit,
        "n_objects": n_objects,
        "tau": tau,
        "shard_size": size,
        "max_resident_shards": resident,
        "executor_mode": executor_mode,
    }

    with ShardExecutor(mode=executor_mode) as executor:
        dataset = ShardedDataset.from_generator(
            schema, n_objects, size, chunk,
            max_resident_shards=resident,
            name=f"{audit}@{n_objects}",
        )
        index = ShardedMembershipIndex(dataset, executor=executor)
        row["n_shards"] = dataset.n_shards

        sharded, sharded_result = _timed_session(
            GroundTruthOracle(dataset, index=index), spec, engine=False, seed=seed
        )
        row["sharded"] = sharded

        # The engine run shares the index (and so its warm totals —
        # like the warm chunks both runs already share through the
        # dataset), which keeps the memory gate below accountable for
        # every sharded structure the benchmark built.
        engine_row, engine_result = _timed_session(
            GroundTruthOracle(dataset, index=index),
            spec, engine=True, seed=seed,
        )
        row["sharded_engine"] = engine_row
        row["engine_verdict_identical"] = (
            _fingerprint(engine_result) == _fingerprint(sharded_result)
        )
        if not row["engine_verdict_identical"]:
            raise AssertionError(
                f"{audit}@{n_objects}: engine-mode sharded verdict diverged "
                "from sequential sharded execution"
            )

        memory = index.memory_report()
        n_predicates = max(len(index._totals), 1)
        dense_needed = dense_index_bytes(
            n_objects, schema.n_attributes, n_predicates
        )
        row["memory"] = memory
        row["n_indexed_predicates"] = n_predicates
        row["dense_index_bytes"] = dense_needed
        row["dense_over_sharded_cap"] = round(dense_needed / memory["cap_bytes"], 2)
        # The acceptance gate: tracked peak inside the structural cap,
        # and the cap itself below what the dense index would need.
        if memory["peak_tracked_bytes"] > memory["cap_bytes"]:
            raise AssertionError(
                f"{audit}@{n_objects}: tracked peak "
                f"{memory['peak_tracked_bytes']} exceeds the structural cap "
                f"{memory['cap_bytes']}"
            )
        if memory["cap_bytes"] >= dense_needed:
            raise AssertionError(
                f"{audit}@{n_objects}: sharded memory cap "
                f"{memory['cap_bytes']} is not below the dense index's "
                f"{dense_needed} bytes — raise N or lower "
                f"--shard-size/--resident-shards"
            )

    if n_objects <= dense_cap:
        chunks = [
            chunk(s, s * size, min((s + 1) * size, n_objects))
            for s in range(row["n_shards"])
        ]
        dense_dataset = LabeledDataset(
            schema,
            np.concatenate(chunks) if chunks else np.empty((0, schema.n_attributes)),
            name=f"{audit}@{n_objects}[dense]",
        )
        dense, dense_result = _timed_session(
            GroundTruthOracle(dense_dataset), spec, engine=False, seed=seed
        )
        row["dense"] = dense
        identical = _fingerprint(dense_result) == _fingerprint(sharded_result)
        tasks_identical = dense["tasks"] == sharded["tasks"]
        row["bit_identical"] = bool(identical and tasks_identical)
        if not row["bit_identical"]:
            raise AssertionError(
                f"sharded path diverged from dense on {audit}@{n_objects}: "
                f"verdicts equal={identical}, tasks {dense['tasks']} vs "
                f"{sharded['tasks']}"
            )
    else:
        row["dense"] = None
        row["dense_skipped_reason"] = (
            f"N={n_objects} above --dense-cap={dense_cap}: the dense index "
            "would need the memory this benchmark exists to avoid"
        )
    return row


def main(argv: list[str] | None = None) -> dict:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--sizes", type=int, nargs="+", default=list(DEFAULT_SIZES),
        help="dataset sizes N to sweep",
    )
    parser.add_argument("--tau", type=int, default=DEFAULT_TAU)
    parser.add_argument(
        "--audits", nargs="+", choices=sorted(CASES), default=sorted(CASES),
    )
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument(
        "--shard-size", type=int, default=None,
        help="rows per shard (default: N//8 per size)",
    )
    parser.add_argument("--resident-shards", type=int, default=DEFAULT_RESIDENT)
    parser.add_argument(
        "--executor", choices=["serial", "threads"], default="threads",
    )
    parser.add_argument("--dense-cap", type=int, default=DEFAULT_DENSE_CAP)
    parser.add_argument("--out", default="BENCH_shards.json")
    args = parser.parse_args(argv)

    results = []
    for n_objects in args.sizes:
        for audit in sorted(args.audits):
            row = run_case(
                audit, n_objects, args.tau,
                seed=args.seed,
                shard_size=args.shard_size,
                resident=args.resident_shards,
                executor_mode=args.executor,
                dense_cap=args.dense_cap,
            )
            results.append(row)
            headroom = f"dense/sharded-cap {row['dense_over_sharded_cap']}x"
            compared = (
                "bit-identical vs dense"
                if row.get("bit_identical")
                else "dense skipped"
            )
            print(
                f"{audit:>15} @ N={n_objects:>10,}: "
                f"sharded {row['sharded']['seconds']:.3f}s "
                f"({row['sharded']['tasks']} tasks, {row['n_shards']} shards, "
                f"{headroom}, {compared})"
            )

    payload = {
        "benchmark": "bench_shards",
        "tau": args.tau,
        "seed": args.seed,
        "sizes": args.sizes,
        "resident_shards": args.resident_shards,
        "executor": args.executor,
        "ru_maxrss_kb": resource.getrusage(resource.RUSAGE_SELF).ru_maxrss,
        "results": results,
    }
    with open(args.out, "w") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    print(f"wrote {args.out} ({len(results)} rows)")
    return payload


if __name__ == "__main__":
    main()
