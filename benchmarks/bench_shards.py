"""Out-of-core scale benchmark: audits over datasets larger than memory.

Runs group / multiple / intersectional coverage audits at N ∈ {1M, 10M}
over a :class:`~repro.data.sharded.ShardedDataset` whose code chunks are
*generated on demand* (seeded per shard) and evicted LRU — the full
``(N, d)`` matrix never exists — sweeping the executor modes
(``threads`` and ``processes`` by default; the chunk generators are
module-level partials, so they pickle into pool workers). The
``--memmap-tier`` flag adds the 100M-row tier: codes are streamed to an
on-disk ``.npy`` once, then audited through
:meth:`~repro.data.sharded.ShardedDataset.from_memmap` with a
``processes`` executor — workers open the map themselves, so chunk
bytes never cross the pickle boundary. Three guarantees are asserted
per row:

* **bit-identity** — at sizes up to ``--dense-cap`` (default 1M) the
  same chunks are concatenated into a dense
  :class:`~repro.data.dataset.LabeledDataset` and the audit re-run over
  the dense index: verdicts AND task counts must match exactly;
* **structural memory bound** — the sharded path's tracked peak
  (resident chunks + prefix tables + totals) never exceeds its
  configuration cap (LRU + worker-held chunk budget, twice the
  residency cap, plus the prefix-cache budget), and that cap stays below
  :func:`~repro.data.sharded.dense_index_bytes` — what the dense index
  would need resident for the same workload;
* **completion at scale** — the group audit finishes at N = 10M (and,
  with ``--memmap-tier``, at N = 100M) with the cap several times under
  the dense requirement.

Results land in ``BENCH_shards.json``. Full sweep (what the committed
baseline is built from)::

    PYTHONPATH=src python benchmarks/bench_shards.py --memmap-tier 100000000

CI smoke slice (N = 1M, processes mode)::

    PYTHONPATH=src python benchmarks/bench_shards.py \
        --sizes 1000000 --executors processes --out BENCH_shards.json
"""

from __future__ import annotations

import argparse
import functools
import json
import os
import resource
import tempfile
import time

import numpy as np

from repro.audit import (
    AuditSession,
    GroupAuditSpec,
    IntersectionalAuditSpec,
    MultipleAuditSpec,
)
from repro.crowd.oracle import GroundTruthOracle
from repro.data.dataset import LabeledDataset
from repro.data.groups import group
from repro.data.schema import Schema
from repro.data.sharded import (
    ShardedDataset,
    ShardedMembershipIndex,
    ShardExecutor,
    dense_index_bytes,
)

DEFAULT_SIZES = (1_000_000, 10_000_000)
DEFAULT_TAU = 50
DEFAULT_RESIDENT = 2
DEFAULT_EXECUTORS = ("threads", "processes")
#: Above this N the dense comparison run is skipped (the dense index
#: would need the memory the sharded path exists to avoid).
DEFAULT_DENSE_CAP = 1_000_000

GENDER_SCHEMA = Schema.from_dict({"gender": ["male", "female"]})
RACE_SCHEMA = Schema.from_dict({"race": ["white", "black", "asian", "other"]})
JOINT_SCHEMA = Schema.from_dict(
    {"gender": ["male", "female"], "race": ["white", "black"]}
)


def _shard_rng(seed: int, case_tag: int, shard_index: int) -> np.random.Generator:
    return np.random.default_rng(np.random.SeedSequence([seed, case_tag, shard_index]))


# The chunk generators are module-level functions bound with
# functools.partial so they pickle into processes-mode pool workers
# (closures would not).
def _group_chunk(
    seed: int, p_minority: float, shard_index: int, start: int, stop: int
) -> np.ndarray:
    rng = _shard_rng(seed, 11, shard_index)
    column = rng.random(stop - start) < p_minority
    return column.astype(np.int16).reshape(-1, 1)


def _multiple_chunk(
    seed: int, weights: tuple, shard_index: int, start: int, stop: int
) -> np.ndarray:
    rng = _shard_rng(seed, 23, shard_index)
    column = rng.choice(len(weights), size=stop - start, p=np.array(weights))
    return column.astype(np.int16).reshape(-1, 1)


def _intersectional_chunk(
    seed: int, weights: tuple, shard_index: int, start: int, stop: int
) -> np.ndarray:
    rng = _shard_rng(seed, 37, shard_index)
    flat = rng.choice(len(weights), size=stop - start, p=np.array(weights))
    return np.column_stack([flat // 2, flat % 2]).astype(np.int16)


def _make_group_case(n_objects: int, tau: int, seed: int):
    """Binary minority drawn i.i.d. at ~0.8·tau expected members."""
    p_minority = 0.8 * tau / n_objects
    chunk = functools.partial(_group_chunk, seed, p_minority)
    spec = GroupAuditSpec(predicate=group(gender="female"), tau=tau)
    return GENDER_SCHEMA, chunk, spec


def _make_multiple_case(n_objects: int, tau: int, seed: int):
    p_minority = 0.8 * tau / n_objects
    weights = (1.0 - 3 * p_minority, p_minority, p_minority, p_minority)
    chunk = functools.partial(_multiple_chunk, seed, weights)
    spec = MultipleAuditSpec(
        groups=tuple(group(race=value) for value in RACE_SCHEMA.attribute("race").values),
        tau=tau,
    )
    return RACE_SCHEMA, chunk, spec


def _make_intersectional_case(n_objects: int, tau: int, seed: int):
    p_minority = 0.8 * tau / n_objects
    # Flat codes over (gender, race): male/white majority, female/white
    # comfortably covered, both black cells near the threshold.
    weights = (
        1.0 - 4 * tau / n_objects - 2 * p_minority,
        p_minority,
        4 * tau / n_objects,
        p_minority,
    )
    chunk = functools.partial(_intersectional_chunk, seed, weights)
    spec = IntersectionalAuditSpec(schema=JOINT_SCHEMA, tau=tau)
    return JOINT_SCHEMA, chunk, spec


CASES = {
    "group": _make_group_case,
    "multiple": _make_multiple_case,
    "intersectional": _make_intersectional_case,
}


def _scrub_costs(payload):
    """Drop cost counters (``tasks``, ``engine_stats``) at every nesting
    level: engine mode legitimately spends differently (speculation,
    per-stepper attribution), so verdict fingerprints must compare
    substance — coverage bits, counts, discovered members, MUPs — only.
    Task equality is asserted separately where modes make it exact."""
    if isinstance(payload, dict):
        return {
            key: _scrub_costs(value)
            for key, value in payload.items()
            if key not in ("tasks", "engine_stats")
        }
    if isinstance(payload, list):
        return [_scrub_costs(item) for item in payload]
    return payload


def _fingerprint(result) -> str:
    """Kind-agnostic verdict fingerprint built from the lossless codec."""
    from repro.audit.serialization import result_to_dict

    return json.dumps(_scrub_costs(result_to_dict(result)), sort_keys=True)


def _timed_session(make_oracle, spec, *, engine: bool, seed: int, repeats: int = 1):
    """Run the audit ``repeats`` times (fresh oracle each — identical
    queries by determinism) and report the best wall-clock. Repeats
    measure the warm steady state a deployment actually runs in (index
    built, caches resident) and cut single-shot scheduler noise out of
    the ratio rows the regression gate compares."""
    best = None
    report = None
    for _ in range(max(1, repeats)):
        started = time.perf_counter()
        with AuditSession(
            make_oracle(), engine=True if engine else None, seed=seed
        ) as session:
            run_report = session.run(spec)
        elapsed = time.perf_counter() - started
        if report is None:
            report = run_report
            best = elapsed
        else:
            if run_report.tasks.total != report.tasks.total:
                raise AssertionError(
                    f"task spend varied across repeats: "
                    f"{run_report.tasks.total} vs {report.tasks.total}"
                )
            best = min(best, elapsed)
    (entry,) = report.entries
    return {
        "seconds": round(best, 6),
        "tasks": report.tasks.total,
        "set_queries": report.tasks.n_set_queries,
        "point_queries": report.tasks.n_point_queries,
        "round_trips": report.tasks.n_rounds,
    }, entry.result


def _materialize_memmap(path: str, schema, chunk, n_objects: int, shard_size: int):
    """Stream the synthetic codes to an on-disk ``.npy``, one shard at a
    time — the writer never holds more than one chunk either."""
    mapped = np.lib.format.open_memmap(
        path, mode="w+", dtype=np.int16, shape=(n_objects, schema.n_attributes)
    )
    n_shards = -(-n_objects // shard_size)
    for shard_index in range(n_shards):
        start = shard_index * shard_size
        stop = min(start + shard_size, n_objects)
        mapped[start:stop] = chunk(shard_index, start, stop)
    mapped.flush()
    del mapped


def run_case(
    audit: str,
    n_objects: int,
    tau: int,
    *,
    seed: int,
    shard_size: int | None,
    resident: int,
    executor_mode: str,
    dense_cap: int,
    prefix_budget: int | None = None,
    memmap_path: str | None = None,
) -> dict:
    schema, chunk, spec = CASES[audit](n_objects, tau, seed)
    size = shard_size if shard_size is not None else max(1, n_objects // 8)
    row: dict = {
        "audit": audit,
        "n_objects": n_objects,
        "tau": tau,
        "shard_size": size,
        "max_resident_shards": resident,
        "executor_mode": executor_mode,
        "backend": "memmap" if memmap_path else "generator",
    }

    with ShardExecutor(mode=executor_mode) as executor:
        if memmap_path:
            if not os.path.exists(memmap_path):
                _materialize_memmap(memmap_path, schema, chunk, n_objects, size)
            dataset = ShardedDataset.from_memmap(
                schema, memmap_path, size,
                executor=executor,
                max_resident_shards=resident,
                name=f"{audit}@{n_objects}[memmap]",
            )
        else:
            dataset = ShardedDataset.from_generator(
                schema, n_objects, size, chunk,
                executor=executor,
                max_resident_shards=resident,
                name=f"{audit}@{n_objects}",
            )
        # Budget the prefix cache to pin whole predicates (≈ 8·N bytes
        # per pinned predicate — always below the dense index's matching
        # prefix table, and it turns every post-build boundary query
        # into a lock-free lookup instead of a chunk regeneration).
        budget = prefix_budget if prefix_budget else max(dataset.n_shards, resident)
        row["prefix_budget"] = budget
        index = ShardedMembershipIndex(
            dataset, executor=executor, max_cached_prefixes=budget
        )
        row["n_shards"] = dataset.n_shards
        # A deployment keeps its pool alive across audits; one-time pool
        # construction (process forks) is not audit latency.
        executor.warm()

        # Ratio rows (a dense comparison exists) are best-of-3; the
        # huge tiers stay single-shot to keep the sweep bounded.
        repeats = 3 if n_objects <= dense_cap else 1
        row["repeats"] = repeats
        sharded, sharded_result = _timed_session(
            lambda: GroundTruthOracle(dataset, index=index),
            spec, engine=False, seed=seed, repeats=repeats,
        )
        row["sharded"] = sharded

        # The engine run shares the index (and so its warm totals —
        # like the warm chunks both runs already share through the
        # dataset), which keeps the memory gate below accountable for
        # every sharded structure the benchmark built.
        engine_row, engine_result = _timed_session(
            lambda: GroundTruthOracle(dataset, index=index),
            spec, engine=True, seed=seed,
        )
        row["sharded_engine"] = engine_row
        row["engine_verdict_identical"] = (
            _fingerprint(engine_result) == _fingerprint(sharded_result)
        )
        if not row["engine_verdict_identical"]:
            raise AssertionError(
                f"{audit}@{n_objects}: engine-mode sharded verdict diverged "
                "from sequential sharded execution"
            )

        memory = index.memory_report()
        n_predicates = max(len(index._totals), 1)
        dense_needed = dense_index_bytes(
            n_objects, schema.n_attributes, n_predicates
        )
        row["memory"] = memory
        row["n_indexed_predicates"] = n_predicates
        row["dense_index_bytes"] = dense_needed
        row["dense_over_sharded_cap"] = round(dense_needed / memory["cap_bytes"], 2)
        # The acceptance gate: tracked peak inside the structural cap,
        # and the cap itself below what the dense index would need.
        if memory["peak_tracked_bytes"] > memory["cap_bytes"]:
            raise AssertionError(
                f"{audit}@{n_objects}: tracked peak "
                f"{memory['peak_tracked_bytes']} exceeds the structural cap "
                f"{memory['cap_bytes']}"
            )
        if memory["cap_bytes"] >= dense_needed:
            raise AssertionError(
                f"{audit}@{n_objects}: sharded memory cap "
                f"{memory['cap_bytes']} is not below the dense index's "
                f"{dense_needed} bytes — raise N or lower "
                f"--shard-size/--resident-shards/--prefix-budget"
            )

    if n_objects <= dense_cap:
        chunks = [
            chunk(s, s * size, min((s + 1) * size, n_objects))
            for s in range(row["n_shards"])
        ]
        dense_dataset = LabeledDataset(
            schema,
            np.concatenate(chunks) if chunks else np.empty((0, schema.n_attributes)),
            name=f"{audit}@{n_objects}[dense]",
        )
        dense, dense_result = _timed_session(
            lambda: GroundTruthOracle(dense_dataset),
            spec, engine=False, seed=seed, repeats=repeats,
        )
        row["dense"] = dense
        row["sharded_over_dense"] = round(
            sharded["seconds"] / dense["seconds"], 3
        )
        identical = _fingerprint(dense_result) == _fingerprint(sharded_result)
        tasks_identical = dense["tasks"] == sharded["tasks"]
        row["bit_identical"] = bool(identical and tasks_identical)
        if not row["bit_identical"]:
            raise AssertionError(
                f"sharded path diverged from dense on {audit}@{n_objects}: "
                f"verdicts equal={identical}, tasks {dense['tasks']} vs "
                f"{sharded['tasks']}"
            )
    else:
        row["dense"] = None
        row["dense_skipped_reason"] = (
            f"N={n_objects} above --dense-cap={dense_cap}: the dense index "
            "would need the memory this benchmark exists to avoid"
        )
    return row


def main(argv: list[str] | None = None) -> dict:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--sizes", type=int, nargs="+", default=list(DEFAULT_SIZES),
        help="dataset sizes N to sweep",
    )
    parser.add_argument("--tau", type=int, default=DEFAULT_TAU)
    parser.add_argument(
        "--audits", nargs="+", choices=sorted(CASES), default=sorted(CASES),
    )
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument(
        "--shard-size", type=int, default=None,
        help="rows per shard (default: N//8 per size)",
    )
    parser.add_argument("--resident-shards", type=int, default=DEFAULT_RESIDENT)
    parser.add_argument(
        "--executors", nargs="+", choices=["serial", "threads", "processes"],
        default=list(DEFAULT_EXECUTORS),
        help="executor modes to sweep (each produces its own result rows)",
    )
    parser.add_argument(
        "--prefix-budget", type=int, default=None,
        help="prefix-cache entry budget (default: n_shards, which pins "
        "whole predicates)",
    )
    parser.add_argument(
        "--memmap-tier", type=int, default=None, metavar="N",
        help="additionally run the group audit at this N over an on-disk "
        "memmapped .npy with a processes executor (the 100M-row tier)",
    )
    parser.add_argument(
        "--memmap-dir", default=None,
        help="directory for the memmap tier's .npy (default: a tempdir; "
        "the file is reused if already present)",
    )
    parser.add_argument("--dense-cap", type=int, default=DEFAULT_DENSE_CAP)
    parser.add_argument("--out", default="BENCH_shards.json")
    args = parser.parse_args(argv)

    def report(row: dict) -> None:
        headroom = f"dense/sharded-cap {row['dense_over_sharded_cap']}x"
        compared = (
            f"bit-identical vs dense, {row['sharded_over_dense']}x dense time"
            if row.get("bit_identical")
            else "dense skipped"
        )
        print(
            f"{row['audit']:>15} @ N={row['n_objects']:>11,} "
            f"[{row['executor_mode']}/{row['backend']}]: "
            f"sharded {row['sharded']['seconds']:.3f}s "
            f"({row['sharded']['tasks']} tasks, {row['n_shards']} shards, "
            f"{headroom}, {compared})"
        )

    results = []
    for n_objects in args.sizes:
        for audit in sorted(args.audits):
            for executor_mode in args.executors:
                row = run_case(
                    audit, n_objects, args.tau,
                    seed=args.seed,
                    shard_size=args.shard_size,
                    resident=args.resident_shards,
                    executor_mode=executor_mode,
                    dense_cap=args.dense_cap,
                    prefix_budget=args.prefix_budget,
                )
                results.append(row)
                report(row)

    if args.memmap_tier:
        memmap_dir = args.memmap_dir or tempfile.mkdtemp(prefix="bench_shards_")
        os.makedirs(memmap_dir, exist_ok=True)
        memmap_path = os.path.join(
            memmap_dir, f"group_{args.memmap_tier}_{args.seed}.npy"
        )
        row = run_case(
            "group", args.memmap_tier, args.tau,
            seed=args.seed,
            shard_size=args.shard_size,
            resident=args.resident_shards,
            executor_mode="processes",
            dense_cap=args.dense_cap,
            prefix_budget=args.prefix_budget,
            memmap_path=memmap_path,
        )
        results.append(row)
        report(row)

    payload = {
        "benchmark": "bench_shards",
        "tau": args.tau,
        "seed": args.seed,
        "sizes": args.sizes,
        "resident_shards": args.resident_shards,
        "executors": args.executors,
        "memmap_tier": args.memmap_tier,
        "ru_maxrss_kb": resource.getrusage(resource.RUSAGE_SELF).ru_maxrss,
        "results": results,
    }
    with open(args.out, "w") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    print(f"wrote {args.out} ({len(results)} rows)")
    return payload


if __name__ == "__main__":
    main()
