"""Bench T2 — regenerate Table 2 (classifier-assisted coverage, 9 rows).

Asserts the paper's qualitative structure:

* the strategy heuristic picks what the paper's heuristic picked on every
  row (Partition iff estimated FP rate < 25 %),
* high-precision classifiers (FERET + DeepFace) beat standalone
  Group-Coverage by a wide margin,
* every verdict matches ground truth,
* Group-Coverage's own HIT counts land on the paper's numbers (these are
  algorithmic, not classifier-dependent).

Per-row Classifier-Coverage HIT counts can deviate from the paper where
the real classifiers' predicted-set sizes differ from what the rounded
(accuracy, precision) pins down — see EXPERIMENTS.md.
"""

from __future__ import annotations

from repro.experiments.table2 import render_table2, run_table2


def test_table2(once):
    rows = once(run_table2, n_trials=5)
    print()
    print(render_table2(rows))

    for row in rows:
        assert row.verdict_correct, f"{row.classifier_name}: wrong verdict"
        assert row.strategy == row.profile.paper_strategy, (
            f"{row.dataset_key}/{row.classifier_name}: strategy "
            f"{row.strategy} != paper {row.profile.paper_strategy}"
        )
        # Group-Coverage column is algorithmic: should match the paper
        # within trial noise.
        assert (
            0.85 * row.profile.paper_group_hits
            <= row.group_coverage_hits
            <= 1.15 * row.profile.paper_group_hits
        )

    # The headline: partition-strategy rows win big against Group-Coverage.
    partition_rows = [r for r in rows if r.strategy == "partition"]
    assert partition_rows, "expected at least the two FERET DeepFace rows"
    for row in partition_rows:
        assert row.classifier_coverage_hits < 0.5 * row.group_coverage_hits
