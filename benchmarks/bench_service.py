"""Service benchmark: latency overlap of concurrent audit jobs.

The paper's cost model counts tasks; a deployment also pays *latency* —
a published batch of HITs answers seconds to minutes later. This
harness measures what the multi-tenant :class:`~repro.service.AuditService`
buys on that axis: it runs N group audits over a
:class:`~repro.crowd.backends.LatencyModelBackend` (simulated per-worker
latency on a virtual clock, identical answers and dollar charges)

* **serially** — ``max_active_jobs=1``: each audit waits out its own
  batches, one after another (the blocking-oracle execution model), and
* **overlapped** — all N jobs in flight on the shared engine: every
  audit keeps its frontier outstanding while the others wait.

Answers are identical and per-job task spend is unchanged (distinct
predicates, shared cache notwithstanding) — only the clock differs. The
harness asserts identical total spend and the wall-clock speedup target
(≥ 4× at 8 jobs), plus bit-identical verdicts between an
InlineBackend-driven service and the session API.

Results land in ``BENCH_service.json``; CI runs this script on every
push. Full run::

    PYTHONPATH=src python benchmarks/bench_service.py
"""

from __future__ import annotations

import argparse
import json
import time

import numpy as np

from repro.audit import AuditSession, GroupAuditSpec
from repro.crowd.backends import LatencyModelBackend
from repro.crowd.oracle import GroundTruthOracle
from repro.data.groups import group
from repro.data.synthetic import single_attribute_dataset
from repro.service import AuditService

DEFAULT_JOBS = 8
DEFAULT_TAU = 100
SPEEDUP_TARGET = 4.0


def build_dataset(n_jobs: int, rng: np.random.Generator):
    counts = {f"group{i:02d}": 150 + 35 * i for i in range(n_jobs)}
    return single_attribute_dataset(counts, rng=rng), list(counts)


def build_specs(values: list[str], tau: int) -> list[GroupAuditSpec]:
    return [GroupAuditSpec(predicate=group(race=value), tau=tau) for value in values]


def run_arm(dataset, specs, *, max_active_jobs: int) -> dict:
    """One benchmark arm: all specs through a latency-backend service."""
    oracle = GroundTruthOracle(dataset)
    service = AuditService(
        oracle,
        backend=lambda proxy: LatencyModelBackend(
            proxy, rng=np.random.default_rng(1234)
        ),
        max_active_jobs=max_active_jobs,
    )
    started = time.perf_counter()
    with service:
        handles = [
            service.submit(spec, tenant=f"tenant-{position}")
            for position, spec in enumerate(specs)
        ]
        service.drain()
        reports = [handle.result() for handle in handles]
        makespan = service.backend.clock.now()
    real_seconds = time.perf_counter() - started
    return {
        "max_active_jobs": max_active_jobs,
        "n_jobs": len(specs),
        "tasks": oracle.ledger.total,
        "oracle_round_trips": oracle.ledger.n_rounds,
        "virtual_makespan_seconds": makespan,
        "jobs_per_virtual_hour": len(specs) / makespan * 3600.0,
        "real_seconds": real_seconds,
        "verdicts": [
            {"covered": report.result.covered, "count": report.result.count}
            for report in reports
        ],
    }


def check_inline_equivalence(dataset, specs) -> dict:
    """The zero-latency service must be bit-identical to the session API."""
    session_oracle = GroundTruthOracle(dataset)
    with AuditSession(session_oracle, engine=True) as session:
        reference = session.run_many(specs)

    service_oracle = GroundTruthOracle(dataset)
    with AuditService(service_oracle, max_active_jobs=len(specs)) as service:
        handles = [service.submit(spec) for spec in specs]
        service.drain()
        reports = [handle.result() for handle in handles]
        engine_stats = service.engine.stats

    for report, entry in zip(reports, reference.entries):
        assert report.result.covered == entry.result.covered, "verdict drift"
        assert report.result.count == entry.result.count, "count drift"
        assert (
            report.tasks.n_set_queries == entry.result.tasks.n_set_queries
        ), "per-job attribution drift"
    assert service_oracle.ledger.total == session_oracle.ledger.total, "spend drift"
    assert engine_stats == reference.engine_stats, "engine-stats drift"
    return {
        "tasks": service_oracle.ledger.total,
        "scheduler_rounds": engine_stats.scheduler_rounds,
        "oracle_round_trips": engine_stats.oracle_round_trips,
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--jobs", type=int, default=DEFAULT_JOBS)
    parser.add_argument("--tau", type=int, default=DEFAULT_TAU)
    parser.add_argument("--out", default="BENCH_service.json")
    args = parser.parse_args()
    if args.jobs < 2:
        parser.error("--jobs must be >= 2 (overlap needs concurrency)")

    dataset, values = build_dataset(args.jobs, np.random.default_rng(7))
    specs = build_specs(values, args.tau)

    print(f"service benchmark: {args.jobs} group audits, tau={args.tau}, "
          f"N={len(dataset)}")
    inline = check_inline_equivalence(dataset, specs)
    print(f"  inline equivalence ok: {inline['tasks']} tasks, "
          f"{inline['oracle_round_trips']} round-trips, bit-identical to sessions")

    serial = run_arm(dataset, specs, max_active_jobs=1)
    overlapped = run_arm(dataset, specs, max_active_jobs=args.jobs)

    assert serial["verdicts"] == overlapped["verdicts"], (
        "overlap changed a verdict"
    )
    assert serial["tasks"] == overlapped["tasks"], (
        f"overlap changed the crowd bill: serial {serial['tasks']} vs "
        f"overlapped {overlapped['tasks']}"
    )
    speedup = (
        serial["virtual_makespan_seconds"] / overlapped["virtual_makespan_seconds"]
    )
    for row in (serial, overlapped):
        mode = "serial " if row["max_active_jobs"] == 1 else "overlap"
        print(
            f"  {mode}: {row['virtual_makespan_seconds']:>10,.0f} virtual s, "
            f"{row['tasks']} tasks, {row['jobs_per_virtual_hour']:.2f} jobs/h, "
            f"{row['real_seconds']:.2f} real s"
        )
    print(f"  wall-clock speedup of overlap vs serial: {speedup:.1f}x "
          f"(target >= {SPEEDUP_TARGET}x) at identical task spend")
    assert speedup >= SPEEDUP_TARGET, (
        f"overlap speedup {speedup:.2f}x is below the {SPEEDUP_TARGET}x target"
    )

    payload = {
        "benchmark": "audit-service latency overlap",
        "n_jobs": args.jobs,
        "tau": args.tau,
        "dataset_size": len(dataset),
        "inline_equivalence": inline,
        "serial": serial,
        "overlapped": overlapped,
        "speedup": speedup,
        "speedup_target": SPEEDUP_TARGET,
    }
    with open(args.out, "w") as sink:
        json.dump(payload, sink, indent=2)
    print(f"  wrote {args.out}")


if __name__ == "__main__":
    main()
