"""Micro-benchmark: sequential vs. engine-mode query execution.

A multi-group workload (two groups audited over the same view, the seed
microbench's dataset and parameters) run both ways through the
:class:`repro.AuditSession` API. Wall-clock is what pytest-benchmark
records; the comparison test additionally asserts the engine's
round-trip advantage and the bit-identity of the results.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.audit import AuditSession, GroupAuditSpec
from repro.crowd.oracle import GroundTruthOracle
from repro.data.groups import group
from repro.data.synthetic import binary_dataset

# The seed benchmark config (test_microbench.py) plus a second group over
# the same view: the paper's default tau/n on a 100k-object dataset.
SPECS = (
    GroupAuditSpec(predicate=group(gender="female"), tau=50, n=50),
    GroupAuditSpec(predicate=group(gender="male"), tau=50, n=50),
)


@pytest.fixture(scope="module")
def dataset():
    return binary_dataset(100_000, 500, rng=np.random.default_rng(0))


def run_sequential(dataset):
    oracle = GroundTruthOracle(dataset)
    with AuditSession(oracle) as session:
        report = session.run_many(SPECS)
    return oracle.ledger, report


def run_engine(dataset, batch_size=64):
    oracle = GroundTruthOracle(dataset)
    with AuditSession(oracle, engine=True, batch_size=batch_size) as session:
        report = session.run_many(SPECS)
    return oracle.ledger, report


def test_sequential_multi_group(benchmark, dataset):
    ledger, report = benchmark(run_sequential, dataset)
    assert all(result.count >= 0 for result in report.results)


def test_engine_multi_group(benchmark, dataset):
    ledger, report = benchmark(run_engine, dataset)
    assert len(report.entries) == len(SPECS)


def test_engine_issues_fewer_round_trips_with_identical_results(dataset):
    sequential_ledger, sequential_report = run_sequential(dataset)
    engine_ledger, engine_report = run_engine(dataset)

    # Strictly fewer oracle round-trips on the multi-group workload.
    assert engine_ledger.n_rounds < sequential_ledger.n_rounds

    # Bit-identical verdicts, counts, and isolated members per group.
    for reference, ours in zip(sequential_report.results, engine_report.results):
        assert ours.covered == reference.covered
        assert ours.count == reference.count
        assert ours.discovered_indices == reference.discovered_indices

    print(
        f"\nsequential: {sequential_ledger.n_set_queries} set queries in "
        f"{sequential_ledger.n_rounds} round-trips; "
        f"engine: {engine_ledger.n_set_queries} set queries in "
        f"{engine_ledger.n_rounds} round-trips "
        f"({sequential_ledger.n_rounds / engine_ledger.n_rounds:.1f}x fewer)"
    )
