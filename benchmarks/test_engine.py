"""Micro-benchmark: sequential vs. engine-mode query execution.

A multi-group workload (two groups audited over the same view, the seed
microbench's dataset and parameters) run both ways. Wall-clock is what
pytest-benchmark records; the comparison test additionally asserts the
engine's round-trip advantage and the bit-identity of the results.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.group_coverage import GroupCoverageStepper, group_coverage
from repro.crowd.oracle import GroundTruthOracle
from repro.data.groups import group
from repro.data.synthetic import binary_dataset
from repro.engine import QueryEngine

# The seed benchmark config (test_microbench.py) plus a second group over
# the same view: the paper's default tau/n on a 100k-object dataset.
GROUPS = (group(gender="female"), group(gender="male"))
TAU = 50
N = 50


@pytest.fixture(scope="module")
def dataset():
    return binary_dataset(100_000, 500, rng=np.random.default_rng(0))


def run_sequential(dataset):
    oracle = GroundTruthOracle(dataset)
    results = [
        group_coverage(oracle, g, TAU, n=N, dataset_size=len(dataset))
        for g in GROUPS
    ]
    return oracle.ledger, results


def run_engine(dataset, batch_size=64):
    oracle = GroundTruthOracle(dataset)
    engine = QueryEngine(oracle, batch_size=batch_size)
    view = np.arange(len(dataset), dtype=np.int64)
    steppers = [GroupCoverageStepper(g, TAU, n=N, view=view) for g in GROUPS]
    engine.run(steppers)
    return oracle.ledger, steppers


def test_sequential_multi_group(benchmark, dataset):
    ledger, results = benchmark(run_sequential, dataset)
    assert all(r.count >= 0 for r in results)


def test_engine_multi_group(benchmark, dataset):
    ledger, steppers = benchmark(run_engine, dataset)
    assert all(s.done for s in steppers)


def test_engine_issues_fewer_round_trips_with_identical_results(dataset):
    sequential_ledger, sequential_results = run_sequential(dataset)
    engine_ledger, steppers = run_engine(dataset)

    # Strictly fewer oracle round-trips on the multi-group workload.
    assert engine_ledger.n_rounds < sequential_ledger.n_rounds

    # Bit-identical verdicts, counts, and isolated members per group.
    for reference, stepper in zip(sequential_results, steppers):
        assert stepper.covered == reference.covered
        assert stepper.count == reference.count
        assert stepper.discovered_indices == reference.discovered_indices

    print(
        f"\nsequential: {sequential_ledger.n_set_queries} set queries in "
        f"{sequential_ledger.n_rounds} round-trips; "
        f"engine: {engine_ledger.n_set_queries} set queries in "
        f"{engine_ledger.n_rounds} round-trips "
        f"({sequential_ledger.n_rounds / engine_ledger.n_rounds:.1f}x fewer)"
    )
