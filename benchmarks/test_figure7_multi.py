"""Bench F7e/F7g — Multiple-Coverage vs brute force.

Asserts the paper's qualitative findings:

* 7e — the heuristic clearly wins on "effective 1", is competitive on
  "effective 2"/"ineffective", and *loses* on the adversarial setting
  (the super-group penalty) — "we can expect that our method works very
  well ... in some cases while failing in others".
* 7g — on effective compositions the gap over brute force widens as the
  attribute cardinality grows from 3 to 6.
* Verdicts always agree with the brute-force ground truth.
"""

from __future__ import annotations

from repro.experiments.figure7_multi import (
    render_multi_comparisons,
    run_figure7e,
    run_figure7g,
)


def test_figure7e(once):
    comparisons = once(run_figure7e, n_trials=5)
    print()
    print(render_multi_comparisons(
        comparisons, title="Figure 7e — multiple non-intersectional groups (sigma=4)"
    ))
    by_name = {c.label: c for c in comparisons}
    assert all(c.verdicts_agree for c in comparisons)
    # Effective 1: aggregation certifies three minorities in one run.
    assert by_name["effective 1"].speedup > 1.2
    # Adversarial: the covered super-group forces per-member re-runs.
    assert by_name["adversarial"].speedup < 1.0
    # The other two settings stay within a modest band of brute force.
    for name in ("effective 2", "ineffective"):
        assert 0.6 <= by_name[name].speedup <= 1.8


def test_figure7g(once):
    comparisons = once(run_figure7g, n_trials=5)
    print()
    print(render_multi_comparisons(
        comparisons, title="Figure 7g — multiple groups across cardinalities"
    ))
    assert all(c.verdicts_agree for c in comparisons)
    speedups = [c.speedup for c in comparisons]
    # The gap widens with cardinality: sigma=6 clearly beats sigma=3.
    assert speedups[-1] > speedups[0]
    assert speedups[-1] > 1.5
