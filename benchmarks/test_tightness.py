"""Bench — the Theorem 3.2 tightness construction.

"We also show that the upper bound discussed in §3.2 is in fact tight":
on the adversarial layout (tau - 1 members spread uniformly) the measured
task count should approach the Θ(τ·log(n/τ) + N/n) adversarial tree size,
demonstrating the bound cannot be improved.
"""

from __future__ import annotations

from repro.core.bounds import adversarial_tree_size, lower_bound_tasks
from repro.core.group_coverage import group_coverage
from repro.crowd.oracle import GroundTruthOracle
from repro.data.groups import group
from repro.data.synthetic import adversarial_tightness_dataset
from repro.experiments.reporting import render_table

FEMALE = group(gender="female")


def test_tightness(once):
    def run() -> list[list[object]]:
        rows = []
        for n_total, tau in ((4096, 16), (4096, 64), (65536, 64), (65536, 256)):
            dataset = adversarial_tightness_dataset(n_total, tau)
            result = group_coverage(
                GroundTruthOracle(dataset), FEMALE, tau, n=n_total,
                dataset_size=n_total,
            )
            predicted = adversarial_tree_size(n_total, tau)
            rows.append(
                [n_total, tau, result.tasks.total, f"{predicted:.0f}",
                 f"{result.tasks.total / predicted:.2f}"]
            )
            assert not result.covered  # tau - 1 members: always uncovered
            assert result.count == tau - 1  # exact count recovered
        return rows

    rows = once(run)
    print()
    print(render_table(
        ["N=n", "tau", "measured tasks", "adversarial-tree size", "ratio"],
        rows,
        title="Theorem 3.2 tightness — measured vs constructed tree size",
    ))
    # The measured cost tracks the adversarial construction within a small
    # constant factor, i.e. the upper bound is tight up to Θ(1).
    for row in rows:
        ratio = float(row[4])
        assert 0.5 <= ratio <= 2.0
    # And it always dominates the trivial lower bound.
    assert all(int(row[2]) >= lower_bound_tasks(int(row[0]), int(row[0])) for row in rows)
