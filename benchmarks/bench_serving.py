"""Serving benchmark: gateway throughput, job latency, kill recovery.

Drives the full network path — HTTP submits from many simulated
tenants through :class:`~repro.serving.ServingGateway`, real worker
subprocesses leasing off the shared root — and measures what the
serving layer costs and survives:

* **jobs/sec** — completed audits per wall-clock second, submit of the
  first job to completion of the last;
* **submit→result latency** — per-job wall time from the HTTP submit
  to the job's terminal state on the board (p50/p99; includes queueing,
  so the tail reflects real multi-tenant contention, not just compute);
* **recovery_seconds** — SIGKILL a worker mid-audit on a separate
  slow-audit root and time from the kill until a replacement worker has
  taken over the lease and finished the job from checkpoint.

Two scenarios share one output file (``BENCH_serving.json``): ``full``
(1000 jobs, 16 tenants, 4 workers — the committed baseline) and
``smoke`` (64 jobs, 8 tenants, 2 workers — what CI re-runs and gates
with ``tools/check_bench_regression.py``). Run::

    PYTHONPATH=src python benchmarks/bench_serving.py --scenario all
"""

from __future__ import annotations

import argparse
import json
import tempfile
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

from repro.audit import GroupAuditSpec
from repro.data.groups import group
from repro.serving import (
    JobBoard,
    ServingClient,
    ServingConfig,
    ServingGateway,
    Submission,
    TERMINAL_STATUSES,
    WorkerPool,
    init_serving_root,
)

RECIPE = {
    "kind": "synthetic-binary",
    "n": 400,
    "n_minority": 60,
    "dataset_seed": 7,
}

#: Slow-audit root for the kill/recovery measurement: small batches and
#: a per-step delay keep the victim mid-job for seconds.
RECOVERY_CONFIG = dict(
    recipe={
        "kind": "synthetic-binary",
        "n": 3000,
        "n_minority": 300,
        "dataset_seed": 3,
    },
    batch_size=4,
    lease_ttl_seconds=1.0,
    step_delay_seconds=0.01,
)

SCENARIOS = {
    "smoke": {"n_jobs": 64, "n_tenants": 8, "n_workers": 2},
    "full": {"n_jobs": 1000, "n_tenants": 16, "n_workers": 4},
}


def percentile(values: list[float], q: float) -> float:
    """Nearest-rank percentile (values need not be sorted)."""
    ordered = sorted(values)
    rank = min(len(ordered) - 1, max(0, round(q / 100.0 * (len(ordered) - 1))))
    return ordered[rank]


def job_spec(position: int) -> GroupAuditSpec:
    """Distinct spec per job (tau varies → distinct idempotency hash)."""
    return GroupAuditSpec(
        predicate=group(gender="female" if position % 2 else "male"),
        tau=10 + (position % 40),
    )


def run_scenario(name: str, *, n_jobs: int, n_tenants: int, n_workers: int) -> dict:
    root = init_serving_root(
        Path(tempfile.mkdtemp(prefix=f"bench-serving-{name}-")),
        ServingConfig(recipe=RECIPE),
    )
    board = JobBoard(root)
    submitted_at: dict[str, float] = {}
    finished_at: dict[str, float] = {}

    with ServingGateway(root) as gateway, WorkerPool(
        root, n_workers=n_workers
    ):
        client = ServingClient("127.0.0.1", gateway.port)
        started = time.perf_counter()

        def submit(position: int) -> str:
            record = client.submit(
                job_spec(position),
                tenant=f"tenant-{position % n_tenants:02d}",
                seed=position,
            )
            submitted_at[record["job_id"]] = time.perf_counter()
            return record["job_id"]

        with ThreadPoolExecutor(max_workers=min(16, n_tenants)) as pool:
            job_ids = list(pool.map(submit, range(n_jobs)))
        assert len(set(job_ids)) == n_jobs, "job ids collided"
        submit_seconds = time.perf_counter() - started

        pending = set(job_ids)
        total_tasks = 0
        deadline = time.monotonic() + max(120.0, 0.6 * n_jobs)
        while pending:
            if time.monotonic() > deadline:
                raise RuntimeError(
                    f"{len(pending)} of {n_jobs} jobs unfinished at deadline"
                )
            for job_id in list(pending):
                state = board.read_state(job_id)
                if state["status"] in TERMINAL_STATUSES:
                    finished_at[job_id] = time.perf_counter()
                    pending.discard(job_id)
                    total_tasks += state["tasks_paid"]
                    assert state["status"] == "succeeded", state
            time.sleep(0.01)
        wall_seconds = time.perf_counter() - started

    latencies = [finished_at[j] - submitted_at[j] for j in job_ids]
    return {
        "n_jobs": n_jobs,
        "n_tenants": n_tenants,
        "n_workers": n_workers,
        "total_tasks": total_tasks,
        "wall_seconds": wall_seconds,
        "submit_wall_seconds": submit_seconds,
        "submits_per_second": n_jobs / submit_seconds,
        "jobs_per_second": n_jobs / wall_seconds,
        "latency_p50_seconds": percentile(latencies, 50),
        "latency_p99_seconds": percentile(latencies, 99),
    }


def measure_recovery() -> dict:
    """SIGKILL a worker mid-audit; time until a replacement finishes."""
    root = init_serving_root(
        Path(tempfile.mkdtemp(prefix="bench-serving-recovery-")),
        ServingConfig(**RECOVERY_CONFIG),
    )
    board = JobBoard(root)
    spec = GroupAuditSpec(predicate=group(gender="female"), tau=250)
    job_id, _ = board.submit(Submission.from_spec(spec, tenant="victim", seed=1))
    answers_path = board.job_dir(job_id) / "store" / "answers.json"

    def durable_count() -> int:
        try:
            payload = json.loads(answers_path.read_text())
        except (FileNotFoundError, json.JSONDecodeError):
            return 0
        return len(payload.get("set_answers") or [])

    with WorkerPool(root, n_workers=1) as pool:
        deadline = time.monotonic() + 60
        while durable_count() < 30:
            if time.monotonic() > deadline:
                raise RuntimeError("victim worker made no durable progress")
            time.sleep(0.02)
        pool.kill_one()
        killed_at = time.perf_counter()
        durable_at_kill = durable_count()
        pool.spawn()
        deadline = time.monotonic() + 120
        while board.read_state(job_id)["status"] not in TERMINAL_STATUSES:
            if time.monotonic() > deadline:
                raise RuntimeError("job never recovered after the kill")
            time.sleep(0.02)
        recovery_seconds = time.perf_counter() - killed_at

    state = board.read_state(job_id)
    assert state["status"] == "succeeded", state
    return {
        "recovery_seconds": recovery_seconds,
        "durable_answers_at_kill": durable_at_kill,
        "tasks_paid": state["tasks_paid"],
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--scenario",
        choices=[*SCENARIOS, "all"],
        default="smoke",
        help="which load shape to run (CI runs smoke; the baseline is all)",
    )
    parser.add_argument(
        "--skip-recovery",
        action="store_true",
        help="skip the worker-kill recovery measurement",
    )
    parser.add_argument("--out", default="BENCH_serving.json")
    args = parser.parse_args()

    names = list(SCENARIOS) if args.scenario == "all" else [args.scenario]
    payload = {"benchmark": "serving gateway + worker pool", "scenarios": {}}
    if Path(args.out).exists():
        # Partial runs (CI smoke) refresh only their scenario.
        try:
            payload = json.loads(Path(args.out).read_text())
        except json.JSONDecodeError:
            pass
    for name in names:
        shape = SCENARIOS[name]
        print(
            f"serving benchmark [{name}]: {shape['n_jobs']} jobs, "
            f"{shape['n_tenants']} tenants, {shape['n_workers']} workers"
        )
        row = run_scenario(name, **shape)
        if not args.skip_recovery:
            row.update(measure_recovery())
        payload["scenarios"][name] = row
        print(
            f"  {row['jobs_per_second']:.1f} jobs/s, "
            f"p50 {row['latency_p50_seconds']:.2f}s, "
            f"p99 {row['latency_p99_seconds']:.2f}s"
            + (
                f", recovery {row['recovery_seconds']:.2f}s"
                if "recovery_seconds" in row
                else ""
            )
        )
    with open(args.out, "w") as sink:
        json.dump(payload, sink, indent=2)
    print(f"  wrote {args.out}")


if __name__ == "__main__":
    main()
