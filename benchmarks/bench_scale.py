"""Scale benchmark: the vectorized million-object audit path.

Runs group / multiple / intersectional coverage audits at N ∈ {10k,
100k, 1M} against two answering backends over identical datasets:

* **baseline** — a row-at-a-time reference oracle that evaluates
  ``predicate.matches_row(dataset.value_row(i))`` per object in pure
  Python: the pre-vectorization execution model this PR replaces.
* **vectorized** — :class:`~repro.crowd.oracle.GroundTruthOracle`
  answering through a
  :class:`~repro.data.membership.GroupMembershipIndex` (prefix-count
  tables for contiguous runs, batched gathers otherwise, interned query
  keys), in both sequential and engine modes.

Sequential baseline and sequential vectorized runs ask the *same
queries in the same order*, so verdicts and task counts must be
bit-identical — the harness asserts it. Engine-mode rows additionally
record round-trips and answer-cache hit rate.

Results land in ``BENCH_scale.json`` (one row per audit × N) to seed
the repo's perf trajectory; CI runs the N=10k smoke slice on every
push. Run the full sweep with::

    PYTHONPATH=src python benchmarks/bench_scale.py

and the smoke slice with ``--sizes 10000``.
"""

from __future__ import annotations

import argparse
import json
import time
from typing import Callable

import numpy as np

from repro.audit import (
    AuditSession,
    GroupAuditSpec,
    IntersectionalAuditSpec,
    MultipleAuditSpec,
)
from repro.crowd.oracle import GroundTruthOracle, Oracle
from repro.data.groups import group
from repro.data.schema import Schema
from repro.data.synthetic import (
    binary_dataset,
    intersectional_dataset,
    single_attribute_dataset,
)

DEFAULT_SIZES = (10_000, 100_000, 1_000_000)
DEFAULT_TAU = 50
#: Row-at-a-time multiple/intersectional audits above this N are skipped
#: (they re-scan the view once per super-group; at 1M that is minutes of
#: pure-Python row evaluation that measures nothing new). The group
#: audit — the acceptance benchmark — is always baselined.
DEFAULT_BASELINE_CAP = 100_000


class RowAtATimeOracle(Oracle):
    """The pre-vectorization reference: pure-Python per-row answering.

    Every set query walks its indices and evaluates the predicate
    against a freshly built ``{attribute: value}`` row — exactly what
    the simulated crowd did before the membership index existed. Kept
    here (not in ``src/``) as the baseline the vectorized path must
    bit-match and outrun.
    """

    def __init__(self, dataset, *, budget: int | None = None) -> None:
        super().__init__(dataset.schema, budget=budget)
        self.dataset = dataset

    def _answer_set(self, indices: np.ndarray, predicate) -> bool:
        return any(
            predicate.matches_row(self.dataset.value_row(int(index)))
            for index in indices
        )

    def _answer_point(self, index: int) -> dict[str, str]:
        return self.dataset.value_row(index)


def _group_fingerprint(result) -> tuple:
    return (result.covered, result.count)


def _multiple_fingerprint(report) -> tuple:
    return tuple(
        (entry.group.describe(), entry.covered, entry.count)
        for entry in report.entries
    )


def _intersectional_fingerprint(report) -> tuple:
    leaves = _multiple_fingerprint(report.leaf_report)
    mups = tuple(sorted(pattern.describe() for pattern in report.mups))
    return (leaves, mups)


def _make_group_case(n_objects: int, tau: int, rng: np.random.Generator):
    dataset = binary_dataset(n_objects, max(tau - 10, 1), rng=rng)
    spec = GroupAuditSpec(predicate=group(gender="female"), tau=tau)
    return dataset, spec, _group_fingerprint


def _make_multiple_case(n_objects: int, tau: int, rng: np.random.Generator):
    minority = max(tau - 10, 1)
    counts = {
        "white": n_objects - 3 * minority,
        "black": minority,
        "asian": minority,
        "other": minority,
    }
    dataset = single_attribute_dataset(counts, rng=rng)
    spec = MultipleAuditSpec(
        groups=tuple(group(race=value) for value in counts), tau=tau
    )
    return dataset, spec, _multiple_fingerprint


def _make_intersectional_case(n_objects: int, tau: int, rng: np.random.Generator):
    schema = Schema.from_dict(
        {"gender": ["male", "female"], "race": ["white", "black"]}
    )
    minority = max(tau - 10, 1)
    joint = {
        ("male", "white"): n_objects - 2 * minority - tau * 4,
        ("female", "white"): tau * 4,
        ("male", "black"): minority,
        ("female", "black"): minority,
    }
    dataset = intersectional_dataset(schema, joint, rng=rng)
    spec = IntersectionalAuditSpec(schema=schema, tau=tau)
    return dataset, spec, _intersectional_fingerprint


CASES: dict[str, Callable] = {
    "group": _make_group_case,
    "multiple": _make_multiple_case,
    "intersectional": _make_intersectional_case,
}


def _timed_run(oracle: Oracle, spec, *, engine: bool, seed: int) -> dict:
    """One audit under one backend; wall clock, tasks, verdict object."""
    started = time.perf_counter()
    with AuditSession(oracle, engine=True if engine else None, seed=seed) as session:
        report = session.run(spec)
    elapsed = time.perf_counter() - started
    (entry,) = report.entries
    row = {
        "seconds": round(elapsed, 6),
        "tasks": report.tasks.total,
        "set_queries": report.tasks.n_set_queries,
        "point_queries": report.tasks.n_point_queries,
        "round_trips": report.tasks.n_rounds,
    }
    if report.engine_stats is not None:
        stats = report.engine_stats
        looked_up = stats.cache_hits + stats.cache_misses
        row["cache_hit_rate"] = round(
            stats.cache_hits / looked_up if looked_up else 0.0, 6
        )
        row["dispatched_queries"] = stats.dispatched_queries
    return row, entry.result


def run_case(audit: str, n_objects: int, tau: int, *, seed: int, baseline_cap: int) -> dict:
    """Benchmark one audit kind at one scale; returns a JSON-ready row."""
    # One dataset instance serves every backend: the membership index is
    # per-dataset, and the baseline oracle never touches it.
    dataset, spec, fingerprint = CASES[audit](
        n_objects, tau, np.random.default_rng(seed)
    )

    row: dict = {"audit": audit, "n_objects": n_objects, "tau": tau}

    vectorized, vectorized_result = _timed_run(
        GroundTruthOracle(dataset), spec, engine=False, seed=seed
    )
    row["vectorized"] = vectorized

    engine_row, engine_result = _timed_run(
        GroundTruthOracle(dataset), spec, engine=True, seed=seed
    )
    row["engine"] = engine_row
    row["engine_verdict_identical"] = fingerprint(engine_result) == fingerprint(
        vectorized_result
    )

    if audit == "group" or n_objects <= baseline_cap:
        baseline, baseline_result = _timed_run(
            RowAtATimeOracle(dataset), spec, engine=False, seed=seed
        )
        row["baseline"] = baseline
        identical = fingerprint(baseline_result) == fingerprint(vectorized_result)
        tasks_identical = baseline["tasks"] == vectorized["tasks"]
        row["bit_identical"] = bool(identical and tasks_identical)
        if not row["bit_identical"]:
            raise AssertionError(
                f"vectorized path diverged from row-at-a-time baseline on "
                f"{audit}@{n_objects}: verdicts equal={identical}, "
                f"tasks {baseline['tasks']} vs {vectorized['tasks']}"
            )
        row["speedup_vectorized"] = round(
            baseline["seconds"] / max(vectorized["seconds"], 1e-9), 2
        )
        row["speedup_engine"] = round(
            baseline["seconds"] / max(engine_row["seconds"], 1e-9), 2
        )
    else:
        row["baseline"] = None
        row["baseline_skipped_reason"] = (
            f"row-at-a-time {audit} audit above --baseline-cap={baseline_cap}"
        )
    return row


def main(argv: list[str] | None = None) -> dict:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--sizes", type=int, nargs="+", default=list(DEFAULT_SIZES),
        help="dataset sizes N to sweep",
    )
    parser.add_argument("--tau", type=int, default=DEFAULT_TAU)
    parser.add_argument(
        "--audits", nargs="+", choices=sorted(CASES), default=sorted(CASES),
    )
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--baseline-cap", type=int, default=DEFAULT_BASELINE_CAP)
    parser.add_argument("--out", default="BENCH_scale.json")
    args = parser.parse_args(argv)

    results = []
    for n_objects in args.sizes:
        for audit in sorted(args.audits):
            row = run_case(
                audit, n_objects, args.tau,
                seed=args.seed, baseline_cap=args.baseline_cap,
            )
            results.append(row)
            baseline = row.get("baseline")
            speedup = (
                f"{row['speedup_vectorized']:.1f}x vs baseline"
                if baseline
                else "baseline skipped"
            )
            print(
                f"{audit:>15} @ N={n_objects:>9,}: "
                f"vectorized {row['vectorized']['seconds']:.3f}s, "
                f"engine {row['engine']['seconds']:.3f}s ({speedup})"
            )

    payload = {
        "benchmark": "bench_scale",
        "tau": args.tau,
        "seed": args.seed,
        "sizes": args.sizes,
        "baseline_cap": args.baseline_cap,
        "results": results,
    }
    with open(args.out, "w") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    print(f"wrote {args.out} ({len(results)} rows)")
    return payload


if __name__ == "__main__":
    main()
