"""Shared benchmark configuration.

Every benchmark regenerates one paper table/figure. They run the full
experiment exactly once per benchmark round (the measured quantity of
interest is the experiment's *task counts*, which are printed; wall-clock
is what pytest-benchmark records).
"""

from __future__ import annotations

import pytest


@pytest.fixture
def once(benchmark):
    """Run the callable through pytest-benchmark with a single round.

    Experiment runners are deterministic under their seeds, so repeated
    rounds only re-measure identical work; one round keeps the whole
    harness fast enough to regenerate every figure in minutes.
    """

    def run(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return run
