"""Benches A4/A5 — the extension modules (paper §8 future work + pruned
MUP search).

A4: cost-aware set-size choice under size-dependent pricing — sweep the
per-image price slope and show the dollar-optimal ``n`` migrating from
the paper's flat-pricing regime (big sets) down to point-query-sized
sets, with realized spending tracking the analytic bound.

A5: level-wise MUP search pruning — on schemas with large uncovered
regions, the pruned traversal counts a fraction of the pattern graph
while returning exactly the exhaustive reference's MUPs.
"""

from __future__ import annotations

import numpy as np

from repro.core.cost_aware import cost_aware_group_coverage
from repro.crowd.oracle import GroundTruthOracle
from repro.crowd.pricing import SizeDependentPricing
from repro.data.groups import group
from repro.data.schema import Schema
from repro.data.synthetic import binary_dataset, intersectional_dataset
from repro.experiments.reporting import render_table
from repro.patterns.graph import PatternGraph
from repro.patterns.search import find_mups_levelwise
from repro.patterns.tabular import assess_tabular_coverage

FEMALE = group(gender="female")


def test_cost_aware_pricing_sweep(once):
    def run():
        rows = []
        rng = np.random.default_rng(71)
        dataset = binary_dataset(20_000, 50, rng=rng)
        for slope in (0.0, 0.0005, 0.002, 0.01, 0.05):
            pricing = SizeDependentPricing(base_price=0.02, per_image=slope)
            outcome = cost_aware_group_coverage(
                GroundTruthOracle(dataset), FEMALE, 50, pricing,
                dataset_size=len(dataset),
            )
            rows.append(
                [
                    f"{slope:.4f}",
                    outcome.chosen_n,
                    f"${outcome.dollars_spent:.2f}",
                    f"${outcome.predicted_cost_bound:.2f}",
                    "covered" if outcome.result.covered else "uncovered",
                ]
            )
        return rows

    rows = once(run)
    print()
    print(render_table(
        ["$/image slope", "chosen n", "spent", "worst-case bound", "verdict"],
        rows,
        title="Ablation A4 — dollar-optimal set size vs pricing slope "
        "(N=20K, f=tau=50)",
    ))
    chosen = [int(row[1]) for row in rows]
    # Flat-ish pricing -> large sets; steep pricing -> small sets.
    assert chosen[0] >= 50
    assert chosen[-1] <= 10
    assert all(a >= b for a, b in zip(chosen, chosen[1:]))
    # Spending never exceeds the analytic worst case.
    for row in rows:
        assert float(row[2][1:]) <= float(row[3][1:])


def test_mup_search_pruning(once):
    def run():
        rows = []
        rng = np.random.default_rng(73)
        # Three attributes, one dominant combination: most of the graph is
        # uncovered and should never be counted.
        schema = Schema.from_dict(
            {
                "x1": ["a", "b", "c"],
                "x2": ["d", "e", "f"],
                "x3": ["g", "h"],
            }
        )
        graph = PatternGraph(schema)
        for majority_share in (0.5, 0.9, 0.99):
            n_total = 20_000
            majority = int(n_total * majority_share)
            leaves = graph.leaves()
            counts = {tuple(leaves[0].values): majority}
            remainder = n_total - majority
            for leaf in leaves[1:]:
                counts[tuple(leaf.values)] = remainder // (len(leaves) - 1)
            dataset = intersectional_dataset(schema, counts, rng=rng)
            result = find_mups_levelwise(dataset, tau=50, graph=graph)
            reference = assess_tabular_coverage(dataset, tau=50, graph=graph)
            assert set(result.mups) == set(reference.mups)
            rows.append(
                [
                    f"{majority_share:.0%}",
                    graph.n_patterns,
                    result.n_patterns_counted,
                    f"{result.n_patterns_counted / graph.n_patterns:.0%}",
                    len(result.mups),
                ]
            )
        return rows

    rows = once(run)
    print()
    print(render_table(
        ["majority share", "graph size", "patterns counted", "fraction", "#MUPs"],
        rows,
        title="Ablation A5 — level-wise MUP search pruning (3x3x2 schema)",
    ))
    # Pruning kicks in once an uncovered region exists, and grows with it.
    counted = [int(row[2]) for row in rows]
    graph_size = int(rows[0][1])
    assert all(c <= graph_size for c in counted)
    assert counted[-1] < graph_size  # the 99% case prunes for real
    assert all(a >= b for a, b in zip(counted, counted[1:]))
