"""Setup shim.

This environment has no network access and no ``wheel`` package, so pip's
PEP 660 editable path (which builds a wheel) fails. This shim lets
``pip install -e . --no-use-pep517 --no-build-isolation`` fall back to the
classic ``setup.py develop`` route. All metadata (including the
``repro-experiments`` console script) lives in pyproject.toml.
"""

from setuptools import setup

setup()
