#!/usr/bin/env python
"""CI gate for the public docstring contract.

Every name exported (via ``__all__``) from the blessed API surface —
``repro.audit``, ``repro.service``, ``repro.crowd.backends``, and the
sharded data layer ``repro.data.sharded`` — must carry a docstring that
includes a runnable example (a ``>>>`` doctest line), and every public
method those exported classes define must carry a docstring of its own.

Run from the repo root::

    PYTHONPATH=src python tools/check_docstrings.py

Exit status 0 when the surface is fully documented; otherwise every
violation is listed and the status is 1 (this is what CI and
``tests/docs/test_docstrings.py`` assert on).
"""

from __future__ import annotations

import importlib
import inspect
import sys

#: Modules whose exported names require example-bearing docstrings.
MODULES = (
    "repro.audit",
    "repro.service",
    "repro.crowd.backends",
    "repro.data.sharded",
    "repro.serving",
)

#: Shortest docstring that can plausibly document anything.
MIN_DOC_LENGTH = 20


def _unwrap(member):
    """The underlying function of a method-like class attribute."""
    if isinstance(member, (classmethod, staticmethod)):
        return member.__func__
    if isinstance(member, property):
        return member.fget
    return member


def check_module(module_name: str) -> list[str]:
    module = importlib.import_module(module_name)
    problems: list[str] = []
    if not (module.__doc__ or "").strip():
        problems.append(f"{module_name}: module has no docstring")
    exported = getattr(module, "__all__", None)
    if exported is None:
        problems.append(f"{module_name}: module defines no __all__")
        return problems
    for name in exported:
        obj = getattr(module, name, None)
        if obj is None:
            problems.append(f"{module_name}.{name}: exported but missing")
            continue
        if not (inspect.isclass(obj) or inspect.isroutine(obj)):
            continue  # re-exported constants document themselves elsewhere
        doc = inspect.getdoc(obj) or ""
        if len(doc.strip()) < MIN_DOC_LENGTH:
            problems.append(f"{module_name}.{name}: missing docstring")
            continue
        if ">>>" not in doc:
            problems.append(
                f"{module_name}.{name}: docstring has no '>>>' example"
            )
        if inspect.isclass(obj):
            problems.extend(check_methods(module_name, name, obj))
    return problems


def check_methods(module_name: str, class_name: str, cls) -> list[str]:
    problems: list[str] = []
    for attr_name, raw in vars(cls).items():
        if attr_name.startswith("_"):
            continue
        member = _unwrap(raw)
        if not inspect.isroutine(member) and not isinstance(raw, property):
            continue
        doc = (getattr(member, "__doc__", None) or "").strip()
        if len(doc) < MIN_DOC_LENGTH:
            problems.append(
                f"{module_name}.{class_name}.{attr_name}: public "
                f"{'property' if isinstance(raw, property) else 'method'} "
                "missing docstring"
            )
    return problems


def main() -> int:
    problems: list[str] = []
    for module_name in MODULES:
        problems.extend(check_module(module_name))
    if problems:
        print(f"{len(problems)} undocumented public name(s):")
        for problem in problems:
            print(f"  {problem}")
        return 1
    total = sum(len(importlib.import_module(m).__all__) for m in MODULES)
    print(
        f"docstring contract holds: {total} exported names across "
        f"{len(MODULES)} modules, all example-bearing"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
