#!/usr/bin/env python
"""CI gate for the public docstring contract (shim over reprolint RPL006).

The actual check lives in :mod:`reprolint.checkers.docstrings` — rule
RPL006 of the repository's invariant linter. This script keeps the
historical entry point (CI's ``docstring-lint`` job and
``tests/docs/test_docstrings.py`` invoke it by path) and preserves its
output contract: exit 0 with a one-line summary when the surface is
fully documented, otherwise list every violation and exit 1.

Run from the repo root::

    PYTHONPATH=src python tools/check_docstrings.py
"""

from __future__ import annotations

import importlib
import sys
from pathlib import Path

#: Modules whose exported names require example-bearing docstrings.
MODULES = (
    "repro.audit",
    "repro.service",
    "repro.crowd.backends",
    "repro.data.sharded",
    "repro.serving",
)

#: Shortest docstring that can plausibly document anything.
MIN_DOC_LENGTH = 20


def main() -> int:
    """Run RPL006 over :data:`MODULES`; print and return like the old gate."""
    sys.path.insert(0, str(Path(__file__).resolve().parent))
    from reprolint.checkers.base import RepoContext
    from reprolint.checkers.docstrings import DocstringContractChecker

    ctx = RepoContext(
        root=Path.cwd(),
        files=(),
        options={"modules": MODULES, "min_doc_length": MIN_DOC_LENGTH},
    )
    problems = [finding.message for finding in DocstringContractChecker().check_repo(ctx)]
    if problems:
        print(f"{len(problems)} undocumented public name(s):")
        for problem in problems:
            print(f"  {problem}")
        return 1
    total = sum(len(importlib.import_module(m).__all__) for m in MODULES)
    print(
        f"docstring contract holds: {total} exported names across "
        f"{len(MODULES)} modules, all example-bearing"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
