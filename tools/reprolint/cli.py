"""``python -m reprolint`` — the command-line front end.

Usage::

    PYTHONPATH=src:tools python -m reprolint src            # text report
    PYTHONPATH=src:tools python -m reprolint --format json src tools
    PYTHONPATH=src:tools python -m reprolint --list-rules

Exit status: 0 clean, 1 findings, 2 usage error (argparse).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Sequence

from reprolint.checkers.base import all_checkers
from reprolint.config import DEFAULT
from reprolint.engine import run_paths


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="reprolint",
        description=(
            "AST-based invariant checker for this repository: determinism, "
            "atomic writes, frozen codecs, error contracts, checkpoint "
            "versioning, docstring coverage."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--root",
        default=None,
        help="repository root findings are reported relative to (default: cwd)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--output",
        default=None,
        help="write the report to this file instead of stdout",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="list every registered rule and exit",
    )
    return parser


def _list_rules() -> str:
    lines = []
    for code, checker_cls in all_checkers().items():
        scoped = DEFAULT.scope(code) or DEFAULT.scope(code.split("-", 1)[0])
        status = "on" if scoped is not None else "off"
        lines.append(f"{code:<13} [{status}] {checker_cls.name}: {checker_cls.description}")
    return "\n".join(lines)


def main(argv: Sequence[str] | None = None) -> int:
    """Run the linter; returns the process exit code."""
    parser = _build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        print(_list_rules())
        return 0

    result = run_paths(args.paths, root=args.root)
    if args.format == "json":
        report = json.dumps(result.to_dict(), indent=2)
    else:
        report = result.render()

    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(report + "\n")
    else:
        print(report)
    if result.exit_code and args.output:
        # keep the failure visible even when the report went to a file
        print(
            f"reprolint: {len(result.findings)} findings (report: {args.output})",
            file=sys.stderr,
        )
    return result.exit_code


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
