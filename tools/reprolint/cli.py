"""``python -m reprolint`` — the command-line front end.

Usage::

    PYTHONPATH=src:tools python -m reprolint src            # text report
    PYTHONPATH=src:tools python -m reprolint --format json src tools
    PYTHONPATH=src:tools python -m reprolint --list-rules

Exit status: 0 clean, 1 findings, 2 usage error (argparse).
"""

from __future__ import annotations

import argparse
import json
import sys
from collections import Counter
from typing import Sequence

from reprolint.checkers.base import all_checkers
from reprolint.config import DEFAULT
from reprolint.engine import LintResult, run_paths


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="reprolint",
        description=(
            "AST-based invariant checker for this repository: determinism, "
            "atomic writes, frozen codecs, error contracts, checkpoint "
            "versioning, docstring coverage."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--root",
        default=None,
        help="repository root findings are reported relative to (default: cwd)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--output",
        default=None,
        help="write the report to this file instead of stdout",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="list every registered rule and exit",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        metavar="FILE",
        help=(
            "suppress findings recorded in this JSON baseline (path + code "
            "+ message, line-drift tolerant) so a new rule can land "
            "gradually; entries that no longer match anything are reported"
        ),
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="write the current findings to --baseline and exit 0",
    )
    return parser


def _list_rules() -> str:
    lines = []
    for code, checker_cls in all_checkers().items():
        scoped = DEFAULT.scope(code) or DEFAULT.scope(code.split("-", 1)[0])
        status = "on" if scoped is not None else "off"
        lines.append(f"{code:<13} [{status}] {checker_cls.name}: {checker_cls.description}")
    return "\n".join(lines)


def _baseline_key(finding_dict: dict) -> tuple:
    """Identity of one finding for baseline matching.

    Lines are deliberately excluded: a baseline must survive unrelated
    edits shifting code up or down.
    """
    return (
        finding_dict.get("path"),
        finding_dict.get("code"),
        finding_dict.get("message"),
    )


def _apply_baseline(result, baseline_path: str):
    """Filter baselined findings out of ``result``; stale entries surface.

    Returns ``(filtered_result, stale_keys)``. Matching is per-key with
    multiplicity: two identical findings and one baseline entry keep one
    finding live.
    """
    with open(baseline_path, "r", encoding="utf-8") as handle:
        recorded = json.load(handle)
    budget = Counter(
        _baseline_key(entry) for entry in recorded.get("findings", [])
    )
    kept = []
    for finding in result.findings:
        key = _baseline_key(finding.to_dict())
        if budget.get(key, 0) > 0:
            budget[key] -= 1
            continue
        kept.append(finding)
    stale = sorted(key for key, count in budget.items() if count > 0)
    return LintResult(findings=tuple(kept), files=result.files), stale


def main(argv: Sequence[str] | None = None) -> int:
    """Run the linter; returns the process exit code."""
    parser = _build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        print(_list_rules())
        return 0
    if args.update_baseline and not args.baseline:
        parser.error("--update-baseline requires --baseline FILE")

    result = run_paths(args.paths, root=args.root)

    if args.update_baseline:
        with open(args.baseline, "w", encoding="utf-8") as handle:
            json.dump(result.to_dict(), handle, indent=2)
            handle.write("\n")
        print(
            f"baseline: recorded {len(result.findings)} findings in "
            f"{args.baseline}"
        )
        return 0

    stale: list = []
    if args.baseline:
        try:
            result, stale = _apply_baseline(result, args.baseline)
        except FileNotFoundError:
            parser.error(f"baseline file {args.baseline} does not exist")

    if args.format == "json":
        report = json.dumps(result.to_dict(), indent=2)
    else:
        report = result.render()

    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(report + "\n")
    else:
        print(report)
    for path, code, message in stale:
        print(
            f"reprolint: stale baseline entry {path}: {code} {message!r} — "
            "the finding is gone; refresh with --update-baseline",
            file=sys.stderr,
        )
    if result.exit_code and args.output:
        # keep the failure visible even when the report went to a file
        print(
            f"reprolint: {len(result.findings)} findings (report: {args.output})",
            file=sys.stderr,
        )
    return result.exit_code


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
