"""The reprolint engine: collect files, dispatch checkers, filter.

One :func:`run_paths` call is one lint run:

1. collect ``.py`` files under the requested paths (skipping
   ``__pycache__`` and hidden directories), recorded posix-relative to
   the scan root;
2. per file — parse suppressions (tokenize) and the AST, then run every
   registered :class:`~reprolint.checkers.base.FileChecker` whose
   configured scope covers the file;
3. once per run — run every registered
   :class:`~reprolint.checkers.base.RepoChecker` whose rule has at
   least one in-scope file (a repo checker named ``RPL003-table``
   borrows the ``RPL003`` scope and options);
4. filter findings through the reviewed suppressions, then report the
   suppressions that silenced nothing as RPL000.

The result is a :class:`LintResult`; nothing here prints or exits —
that is :mod:`reprolint.cli`'s job.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterable, Iterator, Sequence

from reprolint.checkers.base import (
    FileChecker,
    FileContext,
    RepoChecker,
    RepoContext,
    all_checkers,
)
from reprolint.config import DEFAULT, Config
from reprolint.findings import META_CODE, Finding
from reprolint.suppressions import FileSuppressions, parse as parse_suppressions


@dataclass(frozen=True)
class LintResult:
    """Everything one lint run produced."""

    findings: tuple[Finding, ...]
    files: tuple[str, ...]

    @property
    def exit_code(self) -> int:
        """0 when clean, 1 when any finding survived suppression."""
        return 1 if self.findings else 0

    def render(self) -> str:
        """The text report: one line per finding plus a summary."""
        lines = [finding.render() for finding in self.findings]
        if self.findings:
            noun = "finding" if len(self.findings) == 1 else "findings"
            lines.append(f"{len(self.findings)} {noun} in {len(self.files)} files")
        else:
            lines.append(f"clean: {len(self.files)} files, 0 findings")
        return "\n".join(lines)

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready form for ``--format json``."""
        return {
            "findings": [finding.to_dict() for finding in self.findings],
            "files_scanned": len(self.files),
            "exit_code": self.exit_code,
        }


def _collect(paths: Sequence[Path], root: Path) -> list[str]:
    """Every ``.py`` file under ``paths``, posix-relative to ``root``."""
    seen: set[str] = set()
    for path in paths:
        if path.is_file():
            candidates: Iterable[Path] = [path] if path.suffix == ".py" else []
        else:
            candidates = sorted(path.rglob("*.py"))
        for candidate in candidates:
            relative = candidate.resolve().relative_to(root).as_posix()
            if any(
                part == "__pycache__" or part.startswith(".")
                for part in relative.split("/")
            ):
                continue
            seen.add(relative)
    return sorted(seen)


def _file_findings(
    relative: str, source: str, config: Config
) -> Iterator[Finding]:
    """Parse one file and run its in-scope file checkers."""
    try:
        tree = ast.parse(source, filename=relative)
    except (SyntaxError, ValueError) as error:
        line = getattr(error, "lineno", 1) or 1
        yield Finding(
            path=relative,
            line=line,
            col=0,
            code=META_CODE,
            message=f"cannot parse file: {error.msg if hasattr(error, 'msg') else error}",
            checker="engine",
        )
        return
    registry = all_checkers()
    for code in sorted(config.codes_for(relative)):
        checker_cls = registry.get(code)
        if checker_cls is None or not issubclass(checker_cls, FileChecker):
            continue
        rule = config.scope(code)
        ctx = FileContext(
            path=relative,
            tree=tree,
            source=source,
            options=rule.options if rule else {},
        )
        yield from checker_cls().check(ctx)


def _repo_findings(
    root: Path,
    files: Sequence[str],
    sources: dict[str, str],
    config: Config,
) -> Iterator[Finding]:
    """Run every repo checker that has at least one in-scope file."""
    shared: dict[Any, Any] = {}  # one per run: checkers share builds
    for code, checker_cls in all_checkers().items():
        if not issubclass(checker_cls, RepoChecker):
            continue
        # A repo checker that extends a file rule (``RPL003-table``)
        # borrows the base rule's scope and options.
        rule = config.scope(code) or config.scope(code.split("-", 1)[0])
        if rule is None:
            continue
        if not any(rule.applies_to(path) for path in files):
            continue
        ctx = RepoContext(
            root=root,
            files=tuple(files),
            options=rule.options,
            sources=sources,
            shared=shared,
            include=rule.include,
            exclude=rule.exclude,
        )
        yield from checker_cls().check_repo(ctx)


def run_paths(
    paths: Sequence[str | Path],
    *,
    root: str | Path | None = None,
    config: Config = DEFAULT,
) -> LintResult:
    """Lint ``paths`` under ``root`` (default: cwd) against ``config``."""
    resolved_root = Path(root) if root is not None else Path.cwd()
    resolved_root = resolved_root.resolve()
    targets = [
        (path if (path := Path(p)).is_absolute() else resolved_root / path)
        for p in paths
    ]
    files = _collect(targets, resolved_root)

    raw: dict[str, list[Finding]] = {path: [] for path in files}
    suppressions: dict[str, FileSuppressions] = {}
    sources: dict[str, str] = {}
    for relative in files:
        try:
            source = (resolved_root / relative).read_text(encoding="utf-8")
        except OSError as error:
            raw[relative].append(
                Finding(
                    path=relative,
                    line=1,
                    col=0,
                    code=META_CODE,
                    message=f"cannot read file: {error}",
                    checker="engine",
                )
            )
            continue
        sources[relative] = source
        suppressions[relative] = parse_suppressions(source, relative)
        raw[relative].extend(_file_findings(relative, source, config))

    for finding in _repo_findings(resolved_root, files, sources, config):
        raw.setdefault(finding.path, []).append(finding)

    final: list[Finding] = []
    for path, found in raw.items():
        file_suppressions = suppressions.get(path)
        if file_suppressions is None:
            final.extend(found)
            continue
        final.extend(file_suppressions.filter(found))
        final.extend(file_suppressions.malformed)
        final.extend(file_suppressions.unused())

    return LintResult(findings=tuple(sorted(final)), files=tuple(files))
