"""Per-path rule scoping: which rules apply where, with what options.

Scoping is the difference between an invariant and a nuisance: wall
clocks are a determinism bug inside the audit core but the whole point
of lease heartbeats in the serving layer; version stamps belong on
checkpoint envelopes, not on every nested value object. ``DEFAULT``
below is the repository's reviewed policy; tests build narrow configs
of their own around fixture directories.

Patterns are :mod:`fnmatch`-style and match posix-form paths relative
to the scan root (``*`` crosses ``/``, so ``src/repro/serving/*``
covers the whole subtree).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fnmatch import fnmatch
from typing import Any, Mapping


@dataclass(frozen=True)
class RuleScope:
    """Where one rule applies and its checker-specific options."""

    code: str
    include: tuple[str, ...] = ("*",)
    exclude: tuple[str, ...] = ()
    options: Mapping[str, Any] = field(default_factory=dict)

    def applies_to(self, path: str) -> bool:
        """Whether ``path`` (posix, root-relative) is in this rule's scope."""
        if not any(fnmatch(path, pattern) for pattern in self.include):
            return False
        return not any(fnmatch(path, pattern) for pattern in self.exclude)


@dataclass(frozen=True)
class Config:
    """The full rule policy: one :class:`RuleScope` per enabled rule."""

    rules: tuple[RuleScope, ...]

    def scope(self, code: str) -> RuleScope | None:
        """The scope for ``code``, or ``None`` when the rule is disabled."""
        for rule in self.rules:
            if rule.code == code:
                return rule
        return None

    def codes_for(self, path: str) -> set[str]:
        """Every rule code whose scope covers ``path``."""
        return {rule.code for rule in self.rules if rule.applies_to(path)}


#: The repository policy. Rationale for every scoping decision lives in
#: ``docs/guide/invariants.md``; change both together.
DEFAULT = Config(
    rules=(
        # Determinism holds across the whole library; the serving layer
        # alone may read wall clocks (lease heartbeats, idle timeouts),
        # which is an *option* of the rule, not an exemption from its
        # rng discipline.
        RuleScope(
            code="RPL001",
            include=("src/repro/*",),
            options={
                "allow_wall_clock": ("src/repro/serving/*",),
            },
        ),
        # Atomic writes: the durable-state layers. Benchmarks and
        # experiment scripts write throwaway artifacts and are out of
        # scope by design.
        RuleScope(
            code="RPL002",
            include=("src/repro/service/*", "src/repro/serving/*"),
        ),
        # Frozen serializable payload types with full codec coverage.
        RuleScope(
            code="RPL003",
            include=(
                "src/repro/audit/specs.py",
                "src/repro/serving/protocol.py",
                "src/repro/serving/config.py",
                "src/repro/service/jobs.py",
                "src/repro/crowd/reliability/serialization.py",
            ),
            options={
                # to_dict key differs from the field name: reviewed
                # wire-format aliases, not missing coverage.
                "field_aliases": {
                    "Submission": {"spec_dict": "spec", "digest": "spec_hash"},
                },
                # Import-time check: every spec dataclass must be
                # registered in the kind-dispatch codec table.
                "codec_tables": {
                    "src/repro/audit/specs.py": ("repro.audit.specs", "_SPEC_TYPES"),
                },
            },
        ),
        # Decoders on the public audit/service/serving surface convert
        # missing-field KeyError into InvalidParameterError subclasses.
        RuleScope(
            code="RPL004",
            include=(
                "src/repro/audit/*",
                "src/repro/service/*",
                "src/repro/serving/*",
                "src/repro/crowd/reliability/*",
            ),
            options={
                "decoder_names": (
                    "from_dict",
                    "from_json",
                    "from_payload",
                    "from_list",
                    "resume",
                    "*_from_dict",
                    "*_from_list",
                ),
            },
        ),
        # Version stamps on checkpoint/payload envelopes. Nested value
        # objects ride inside a versioned envelope and are exempt;
        # specs are kind-tagged and scoped out entirely.
        RuleScope(
            code="RPL005",
            include=(
                "src/repro/service/*",
                "src/repro/serving/*",
                "src/repro/audit/session.py",
                "src/repro/audit/report.py",
                "src/repro/crowd/reliability/serialization.py",
            ),
            options={
                "reader_names": ("from_dict", "from_json", "resume", "read_state"),
                "writer_names": ("to_dict",),
                "nested_payloads": ("AuditEntry", "JobEvent", "Lease"),
            },
        ),
        # Interprocedural rules (RPL007-010) report on the runtime
        # package; their call graph is built over all of src/repro so
        # cross-module edges (worker -> board, index -> dataset) exist
        # even when the reporting scope is narrower.
        #
        # Thread-shared mutation: anything reachable from an executor
        # submit / Thread target mutates attributes only under a lock.
        RuleScope(
            code="RPL007",
            include=("src/repro/*",),
            exclude=("src/repro/experiments/*",),
            options={
                "model_include": ("src/repro/*",),
                # Per-connection HTTP handlers run on their own thread
                # without a visible spawn site in the project.
                "thread_roots": (
                    "_GatewayHandler.do_GET",
                    "_GatewayHandler.do_POST",
                ),
                # One handler instance per connection thread: its own
                # attributes are thread-local by construction.
                "instance_per_thread": ("_GatewayHandler",),
                # QueryEngine is single-threaded by contract (workers
                # own one engine per process; RPL010 enforces its
                # non-blocking half) — the thread cone stops at the
                # layers that actually share state across threads.
                "follow": (
                    "src/repro/crowd/*",
                    "src/repro/data/*",
                    "src/repro/serving/*",
                    "src/repro/service/*",
                    "src/repro/audit/*",
                ),
            },
        ),
        # Rng-stream discipline: the audit paths must thread the one
        # entry-point generator; no mid-path minting, seeded or not.
        RuleScope(
            code="RPL008",
            include=("src/repro/*",),
            exclude=("src/repro/experiments/*",),
            options={
                "model_include": ("src/repro/*",),
                "entry_points": (
                    "AuditSession.run",
                    "AuditSession.resume",
                    "AuditService.step",
                    "AuditService.drain",
                    "QueryEngine.pump",
                    "QueryEngine.absorb",
                    "QueryEngine.run",
                    "repro.serving.worker:run_worker",
                ),
                # Reviewed mints: entry points derive the stream from an
                # explicit seed (session/service activation, the
                # worker's submission-digest seed, content-digest image
                # synthesis). Constructors are always allowed.
                "rng_factories": (
                    "AuditSession.resume",
                    "AuditService.resume",
                    # Checkpoint restore rebuilds the crowd platform's
                    # stream from the durable bit-generator state the
                    # snapshot carries, so resumed runs replay the
                    # worker-answer sequence bit-identically.
                    "ReliabilitySnapshot.restore",
                    # The per-job execution boundary: the stream is
                    # re-minted from the job's durable seed, so a
                    # re-leased or resumed job replays identically.
                    "AuditService._run_blocking",
                    "_run_leased_job",
                    "synthesize_image",
                    "image_for_row",
                ),
            },
        ),
        # Serving/job-store file protocol: atomic publication, tolerant
        # reads, link-or-rename claims.
        RuleScope(
            code="RPL009",
            include=(
                "src/repro/serving/board.py",
                "src/repro/serving/config.py",
                "src/repro/service/store.py",
            ),
            options={
                "model_include": ("src/repro/*",),
                "atomic_helpers": (
                    "_write_atomic",
                    "*._write_atomic",
                    "_link_exclusive",
                    "init_serving_root",
                ),
                "tolerant_readers": ("_read_json",),
            },
        ),
        # Non-blocking engine core: pump/absorb never wait.
        RuleScope(
            code="RPL010",
            include=("src/repro/*",),
            exclude=("src/repro/experiments/*",),
            options={
                "model_include": ("src/repro/*",),
                "entry_points": ("QueryEngine.pump", "QueryEngine.absorb"),
                # Keep the name-match over-approximation inside the
                # engine's actual dependency cone; the serving client's
                # sockets are not on this path.
                "follow": (
                    "src/repro/engine/*",
                    "src/repro/crowd/*",
                    "src/repro/data/*",
                    "src/repro/audit/*",
                    "src/repro/core/*",
                    "src/repro/patterns/*",
                ),
            },
        ),
        # The docstring contract (the former tools/check_docstrings.py).
        RuleScope(
            code="RPL006",
            include=("src/repro/*",),
            options={
                "modules": (
                    "repro.audit",
                    "repro.service",
                    "repro.crowd.backends",
                    "repro.crowd.reliability",
                    "repro.data.kernels",
                    "repro.data.sharded",
                    "repro.serving",
                ),
                "min_doc_length": 20,
            },
        ),
    ),
)
