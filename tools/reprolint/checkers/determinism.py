"""RPL001 — determinism: audits must replay bit-identically.

Every source of nondeterminism the paper reproduction cares about is a
global the code must not touch: the :mod:`random` module (process-wide
state no checkpoint captures), numpy's legacy global rng
(``np.random.seed``/``np.random.random``/...), unseeded
``np.random.default_rng()``, and wall clocks (``time.time``,
``datetime.now``) whose readings leak into results. Randomness must
flow from a seeded :class:`numpy.random.Generator` threaded through
call signatures — the discipline PR 2's sessions and PR 4's per-job
seeds established.

Paths listed in the ``allow_wall_clock`` option may read clocks (the
serving layer's lease heartbeats are *supposed* to be wall-clock) but
stay bound by the rng rules.
"""

from __future__ import annotations

import ast
from fnmatch import fnmatch
from typing import Iterable, Iterator

from reprolint.checkers.base import FileChecker, FileContext, dotted_name, register
from reprolint.findings import Finding

CODE = "RPL001"

#: Wall-clock reads (dotted call targets).
_WALL_CLOCK = {"time.time", "time.time_ns"}
#: Wall-clock constructors on datetime/date objects.
_WALL_CLOCK_TAILS = {"now", "utcnow", "today"}
#: np.random members that are fine to *call*: seeded-generator plumbing.
_NP_RANDOM_OK = {"default_rng", "Generator", "SeedSequence", "PCG64", "Philox"}


@register
class DeterminismChecker(FileChecker):
    code = CODE
    name = "determinism"
    description = (
        "no random-module/global-numpy rng, unseeded default_rng, or "
        "wall clocks in core paths; rng flows from a threaded Generator"
    )

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        allow_clock = any(
            fnmatch(ctx.path, pattern)
            for pattern in ctx.options.get("allow_wall_clock", ())
        )
        for node in ast.walk(ctx.tree):
            yield from self._check_node(ctx, node, allow_clock)

    def _check_node(
        self, ctx: FileContext, node: ast.AST, allow_clock: bool
    ) -> Iterator[Finding]:
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "random" or alias.name.startswith("random."):
                    yield ctx.finding(
                        node,
                        CODE,
                        "import of the stdlib 'random' module: its global "
                        "state survives no checkpoint; thread a seeded "
                        "np.random.Generator instead",
                        self.name,
                    )
        elif isinstance(node, ast.ImportFrom):
            if node.module == "random":
                yield ctx.finding(
                    node,
                    CODE,
                    "from-import of the stdlib 'random' module: thread a "
                    "seeded np.random.Generator instead",
                    self.name,
                )
        elif isinstance(node, ast.Call):
            yield from self._check_call(ctx, node, allow_clock)

    def _check_call(
        self, ctx: FileContext, node: ast.Call, allow_clock: bool
    ) -> Iterator[Finding]:
        dotted = dotted_name(node.func)
        if dotted is None:
            return
        parts = dotted.split(".")
        if parts[0] == "random":
            yield ctx.finding(
                node,
                CODE,
                f"call to {dotted}(): stdlib random uses process-global "
                "state; use the threaded np.random.Generator",
                self.name,
            )
            return
        if not allow_clock:
            if dotted in _WALL_CLOCK or (
                parts[-1] in _WALL_CLOCK_TAILS
                and any(part in ("datetime", "date") for part in parts[:-1])
            ):
                yield ctx.finding(
                    node,
                    CODE,
                    f"wall-clock read {dotted}(): clock values leak "
                    "nondeterminism into results; take timestamps at the "
                    "edges and pass them in",
                    self.name,
                )
                return
        if len(parts) >= 2 and parts[-2] == "random" and parts[0] in ("np", "numpy"):
            tail = parts[-1]
            if tail == "default_rng" and not node.args and not node.keywords:
                yield ctx.finding(
                    node,
                    CODE,
                    "np.random.default_rng() without a seed: OS-entropy "
                    "seeding makes replay impossible; pass an explicit "
                    "seed or SeedSequence",
                    self.name,
                )
            elif tail not in _NP_RANDOM_OK:
                yield ctx.finding(
                    node,
                    CODE,
                    f"call to {dotted}(): numpy's legacy global rng is "
                    "process-wide state; use a seeded "
                    "np.random.Generator threaded through the call",
                    self.name,
                )
