"""RPL009 — serving/job-store file protocol.

The durability model of the serving layer (see ``docs/guide/serving.md``)
rests on three idioms; this rule makes each one mechanical inside the
store/board modules:

1. **writes flow through the atomic helper** — a raw
   ``write_text``/``write_bytes``/``open(..., "w")``/``json.dump`` is
   only legal inside one of the designated atomic publishers (unique
   scratch + ``os.replace``); every other function must call the
   helper.  Append-mode opens are exempt (event logs are append-only).
2. **reads tolerate ``FileNotFoundError``** — a raw read must sit
   under a ``try`` catching FNF, be inside a designated tolerant
   reader, or (interprocedurally) be reached only through FNF-guarded
   call sites.
3. **claims use link-or-rename** — functions matching the configured
   claim patterns (``*claim*``/``*takeover*``) must reach an exclusive
   publisher (``_link_exclusive``, ``os.rename``/``os.link``), not a
   clobbering ``_write_atomic``: two racers both "succeed" at
   ``os.replace``, only one wins a hard link or rename.

Options
-------
``atomic_helpers`` / ``tolerant_readers``
    Display-name patterns of the blessed publisher/reader functions.
``claim_functions`` / ``exclusive_publishers``
    Patterns for clause 3 (defaults above).
``model_include``
    File set the call graph is built over (default: the rule's
    include — widen it so out-of-file callers count as FNF guards).
"""

from __future__ import annotations

import ast
from fnmatch import fnmatch
from typing import Iterable

from reprolint.analysis import CallGraph, get_call_graph, reachable
from reprolint.checkers.base import RepoChecker, RepoContext, register
from reprolint.findings import Finding

_WRITE_TAILS = ("write_text", "write_bytes")
_READ_TAILS = ("read_text", "read_bytes")
_DEFAULT_CLAIMS = ("*claim", "*takeover*", "*take_over*")
_DEFAULT_EXCLUSIVE = ("*_link_exclusive", "os.rename", "os.link")


def _open_mode(call: ast.Call) -> str | None:
    """The mode argument of an ``open(...)`` call, when literal."""
    mode: ast.expr | None = None
    if len(call.args) >= 2:
        mode = call.args[1]
    for keyword in call.keywords:
        if keyword.arg == "mode":
            mode = keyword.value
    if mode is None:
        return "r"
    if isinstance(mode, ast.Constant) and isinstance(mode.value, str):
        return mode.value
    return None


@register
class FsProtocolChecker(RepoChecker):
    """Flag raw writes, intolerant reads, and clobbering claims."""

    code = "RPL009"
    name = "fs-protocol"
    description = (
        "store/board files: writes via the atomic helper, reads tolerate "
        "FileNotFoundError, claims use link-or-rename"
    )

    def check_repo(self, ctx: RepoContext) -> Iterable[Finding]:
        graph = get_call_graph(
            ctx,
            include=tuple(ctx.options.get("model_include", ctx.include)),
            exclude=ctx.exclude,
        )
        atomic = tuple(ctx.options.get("atomic_helpers", ()))
        tolerant = tuple(ctx.options.get("tolerant_readers", ()))
        claims = tuple(ctx.options.get("claim_functions", _DEFAULT_CLAIMS))
        exclusive = tuple(
            ctx.options.get("exclusive_publishers", _DEFAULT_EXCLUSIVE)
        )

        for qualname in sorted(graph.project.functions):
            fn = graph.project.functions[qualname]
            if not ctx.in_report_scope(fn.path):
                continue
            facts = graph.facts.get(qualname)
            if facts is None:
                continue
            is_atomic = any(fnmatch(fn.display, p) for p in atomic)
            is_tolerant = any(fnmatch(fn.display, p) for p in tolerant)

            for call in facts.calls:
                tail = call.name.split(".")[-1]
                mode = _open_mode(call.node) if tail == "open" else None
                writes = tail in _WRITE_TAILS or tail == "dump" or (
                    mode is not None and any(c in mode for c in ("w", "x", "+"))
                )
                if tail == "dump" and call.name not in ("json.dump", "?.dump"):
                    writes = False
                reads = tail in _READ_TAILS or (
                    mode is not None and not writes and "r" in mode
                ) or (tail == "load" and call.name in ("json.load",))
                if writes and not is_atomic:
                    yield ctx.finding(
                        fn.path,
                        call.node,
                        self.code,
                        (
                            f"raw file write (`{call.name}`) in "
                            f"`{fn.display}` — durable state must be "
                            "published through the atomic-write helper"
                        ),
                        self.name,
                    )
                elif reads and not is_tolerant and "fnf" not in call.guards:
                    if self._callers_guard(graph, qualname):
                        continue
                    yield ctx.finding(
                        fn.path,
                        call.node,
                        self.code,
                        (
                            f"raw file read (`{call.name}`) in "
                            f"`{fn.display}` without FileNotFoundError "
                            "handling — a concurrent worker may remove or "
                            "replace the file at any time"
                        ),
                        self.name,
                    )

            if any(fnmatch(fn.display, p) for p in claims):
                if not self._reaches_exclusive(graph, qualname, exclusive):
                    yield ctx.finding(
                        fn.path,
                        fn.node,
                        self.code,
                        (
                            f"`{fn.display}` claims/takes over shared state "
                            "but never uses the link-or-rename idiom — a "
                            "clobbering write lets two racers both succeed"
                        ),
                        self.name,
                    )

    @staticmethod
    def _callers_guard(graph: CallGraph, qualname: str) -> bool:
        """Every project call into ``qualname`` is FNF-guarded."""
        incoming = graph.in_edges(qualname)
        return bool(incoming) and all(
            "fnf" in edge.guards for edge in incoming
        )

    def _reaches_exclusive(
        self, graph: CallGraph, qualname: str, patterns: tuple[str, ...]
    ) -> bool:
        closure = reachable(graph, [qualname])
        for reached_name in closure:
            facts = graph.facts.get(reached_name)
            if facts is None:
                continue
            for call in facts.calls:
                lowered = call.name.lower()
                if any(
                    fnmatch(lowered, pattern.lower()) for pattern in patterns
                ):
                    return True
        return False
