"""Checker plugin contract and registry.

Two checker shapes exist:

* :class:`FileChecker` — pure AST analysis, called once per in-scope
  file with its parsed tree;
* :class:`RepoChecker` — whole-repo contracts that need to *import* the
  code under analysis (codec tables, docstring surfaces), called once
  per run.

Both emit :class:`~reprolint.findings.Finding`s; both are looked up by
rule code through the registry that :func:`register` populates.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from fnmatch import fnmatch
from pathlib import Path
from typing import Any, Iterable, Mapping, Type

from reprolint.findings import Finding


@dataclass
class FileContext:
    """Everything a :class:`FileChecker` sees for one file."""

    path: str  # posix, relative to the scan root
    tree: ast.Module
    source: str
    options: Mapping[str, Any] = field(default_factory=dict)

    def finding(self, node: ast.AST, code: str, message: str, checker: str) -> Finding:
        """A finding anchored at ``node``'s location in this file."""
        return Finding(
            path=self.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            code=code,
            message=message,
            checker=checker,
        )


@dataclass
class RepoContext:
    """Everything a :class:`RepoChecker` sees for one run.

    ``sources`` holds the already-read text of every scanned file so
    repo checkers never re-read the tree; ``shared`` is one dict per
    lint run, the memoisation home for expensive artifacts (the
    interprocedural call graph) that several checkers share.
    """

    root: Path
    files: tuple[str, ...]  # every scanned file, posix, root-relative
    options: Mapping[str, Any] = field(default_factory=dict)
    sources: Mapping[str, str] = field(default_factory=dict)
    shared: dict[Any, Any] = field(default_factory=dict)
    include: tuple[str, ...] = ("*",)  # the rule's reporting scope
    exclude: tuple[str, ...] = ()

    def finding(self, path: str, node: ast.AST, code: str, message: str,
                checker: str) -> Finding:
        """A finding anchored at ``node``'s location in ``path``."""
        return Finding(
            path=path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            code=code,
            message=message,
            checker=checker,
        )

    def in_report_scope(self, path: str) -> bool:
        """Whether findings in ``path`` belong to this rule's scope.

        Interprocedural rules build their model over a wider file set
        (``model_include``) than they report on; this is the reporting
        filter.
        """
        if not any(fnmatch(path, pattern) for pattern in self.include):
            return False
        return not any(fnmatch(path, pattern) for pattern in self.exclude)


class Checker:
    """Common identity of every rule."""

    code: str = ""
    name: str = ""
    description: str = ""


class FileChecker(Checker):
    """Per-file AST rule."""

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        raise NotImplementedError


class RepoChecker(Checker):
    """Once-per-run rule (may import the code under analysis)."""

    def check_repo(self, ctx: RepoContext) -> Iterable[Finding]:
        raise NotImplementedError


_REGISTRY: dict[str, Type[Checker]] = {}


def register(cls: Type[Checker]) -> Type[Checker]:
    """Class decorator: add a checker to the registry, keyed by code."""
    if not cls.code:
        raise ValueError(f"checker {cls.__name__} declares no rule code")
    if cls.code in _REGISTRY:
        raise ValueError(f"duplicate checker registration for {cls.code}")
    _REGISTRY[cls.code] = cls
    return cls


def all_checkers() -> dict[str, Type[Checker]]:
    """The registry, keyed by rule code (sorted for stable listings)."""
    return dict(sorted(_REGISTRY.items()))


def checker_for(code: str) -> Type[Checker] | None:
    """The checker class registered for ``code``, if any."""
    return _REGISTRY.get(code)


def dotted_name(node: ast.AST) -> str | None:
    """``a.b.c`` for a Name/Attribute chain, else ``None``."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None
