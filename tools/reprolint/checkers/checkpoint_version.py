"""RPL005 — checkpoint-version: writers stamp, readers dispatch.

Checkpoint formats drift (PR 3 bumped set-answer entries to version 2;
PR 5 shipped ``CheckpointVersionError`` because version-1 files crashed
newer builds with ``KeyError``). The only cheap insurance is mechanical:
every payload *writer* (``to_dict`` in the configured paths) stamps a
``"version"`` key into the dict it returns, and every *reader*
(``from_dict``/``resume``/...) mentions ``"version"`` — i.e. actually
looks at the stamp before trusting the shape.

Value objects that only ever travel *inside* a versioned envelope
(``JobEvent`` inside ``_Job`` records, ``AuditEntry`` inside
``AuditReport``) are listed in the ``nested_payloads`` option; the
envelope's stamp covers them.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator

from reprolint.checkers.base import FileChecker, FileContext, register
from reprolint.findings import Finding

CODE = "RPL005"

_DEFAULT_WRITERS = ("to_dict",)
_DEFAULT_READERS = ("from_dict", "from_json")


def _mentions_version(function: ast.AST) -> bool:
    return any(
        isinstance(node, ast.Constant) and node.value == "version"
        for node in ast.walk(function)
    )


def _returned_dicts(function: ast.FunctionDef) -> Iterator[ast.Dict]:
    for node in ast.walk(function):
        if isinstance(node, ast.Return) and isinstance(node.value, ast.Dict):
            yield node.value


def _dict_has_version_key(dictionary: ast.Dict) -> bool:
    return any(
        isinstance(key, ast.Constant) and key.value == "version"
        for key in dictionary.keys
    )


@register
class CheckpointVersionChecker(FileChecker):
    code = CODE
    name = "checkpoint-version"
    description = (
        "payload writers stamp a 'version' key; payload readers "
        "dispatch on it before trusting the shape"
    )

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        writers = tuple(ctx.options.get("writer_names", _DEFAULT_WRITERS))
        readers = tuple(ctx.options.get("reader_names", _DEFAULT_READERS))
        nested = set(ctx.options.get("nested_payloads", ()))
        yield from self._walk(ctx, ctx.tree, None, writers, readers, nested)

    def _walk(
        self,
        ctx: FileContext,
        node: ast.AST,
        class_name: str | None,
        writers: tuple[str, ...],
        readers: tuple[str, ...],
        nested: set[str],
    ) -> Iterator[Finding]:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.ClassDef):
                yield from self._walk(ctx, child, child.name, writers, readers, nested)
            elif isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if class_name in nested:
                    continue
                yield from self._check_function(ctx, child, class_name, writers, readers)
                yield from self._walk(ctx, child, class_name, writers, readers, nested)

    def _check_function(
        self,
        ctx: FileContext,
        function: ast.FunctionDef,
        class_name: str | None,
        writers: tuple[str, ...],
        readers: tuple[str, ...],
    ) -> Iterator[Finding]:
        where = f"{class_name}.{function.name}" if class_name else function.name
        if function.name in writers:
            dicts = list(_returned_dicts(function))
            if dicts and not any(_dict_has_version_key(d) for d in dicts):
                yield ctx.finding(
                    function,
                    CODE,
                    f"{where}() returns a payload dict with no 'version' "
                    "stamp: the next format change strands every file "
                    "already on disk; stamp a version now",
                    self.name,
                )
        elif function.name in readers:
            if not _mentions_version(function):
                yield ctx.finding(
                    function,
                    CODE,
                    f"{where}() decodes a payload without looking at its "
                    "'version' stamp: an incompatible file fails as a "
                    "shape error instead of CheckpointVersionError; "
                    "dispatch on the version first",
                    self.name,
                )
