"""Checker plugins. Importing this package registers every built-in rule."""

from __future__ import annotations

# Imported for registration side effects — each module registers its rule.
from reprolint.checkers import (  # noqa: F401  (registration imports)
    atomic_write,
    checkpoint_version,
    determinism,
    docstrings,
    error_contract,
    frozen_spec,
    fs_protocol,
    nonblocking_core,
    rng_discipline,
    thread_shared,
)
from reprolint.checkers.base import (
    Checker,
    FileChecker,
    FileContext,
    RepoChecker,
    RepoContext,
    all_checkers,
    checker_for,
    register,
)

__all__ = [
    "Checker",
    "FileChecker",
    "FileContext",
    "RepoChecker",
    "RepoContext",
    "all_checkers",
    "checker_for",
    "register",
]
