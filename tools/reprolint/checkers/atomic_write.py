"""RPL002 — atomic-write: durable state lands via unique-tmp-then-rename.

The durable-state layers (the job store, the serving board) promise
readers complete records: every write goes to a scratch file first and
is published with ``os.replace``/``os.link``. Two things break that
promise, and both have shipped as real bugs here:

* writing the destination **in place** (``open(path, "w")`` with no
  rename) — a crash mid-write leaves a torn record;
* a **shared scratch name** — two processes writing the same directory
  rename each other's scratch out from underneath (the PR 6
  ``DirectoryJobStore._write_atomic`` race: ``FileNotFoundError``, or
  silently publishing a peer's snapshot).

So inside the configured paths, any function that opens a file for
writing (mode ``"w"``/``"x"`` or ``Path.write_text``) must, in the same
function, (a) publish via ``os.replace``/``os.rename``/``os.link`` and
(b) derive the scratch name from a per-write uniqueness source
(``secrets.token_hex``, ``os.getpid``, ``uuid4``, ``tempfile.mkstemp``,
...). Append-mode opens are exempt: appends are crash-tolerant by
construction.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator

from reprolint.checkers.base import FileChecker, FileContext, dotted_name, register
from reprolint.findings import Finding

CODE = "RPL002"

_PUBLISH_TAILS = {"replace", "rename", "link"}
_UNIQUE_TAILS = {
    "token_hex",
    "token_urlsafe",
    "getpid",
    "mkstemp",
    "mkdtemp",
    "NamedTemporaryFile",
    "uuid1",
    "uuid4",
}


def _write_mode(call: ast.Call) -> str | None:
    """The literal mode of an ``open()`` call, if determinable."""
    mode_node: ast.AST | None = None
    if len(call.args) >= 2:
        mode_node = call.args[1]
    for keyword in call.keywords:
        if keyword.arg == "mode":
            mode_node = keyword.value
    if mode_node is None:
        return "r"
    if isinstance(mode_node, ast.Constant) and isinstance(mode_node.value, str):
        return mode_node.value
    return None


class _FunctionFacts(ast.NodeVisitor):
    """Write sites, publish calls, and uniqueness sources of one function."""

    def __init__(self) -> None:
        self.writes: list[tuple[ast.AST, str]] = []
        self.publishes = False
        self.unique = False

    def visit_Call(self, node: ast.Call) -> None:
        dotted = dotted_name(node.func)
        if isinstance(node.func, ast.Name) and node.func.id == "open":
            mode = _write_mode(node)
            if mode is not None and ("w" in mode or "x" in mode):
                self.writes.append((node, f'open(..., "{mode}")'))
        elif dotted is not None:
            tail = dotted.rsplit(".", 1)[-1]
            if tail == "write_text":
                self.writes.append((node, f"{dotted}(...)"))
            elif tail in _PUBLISH_TAILS:
                self.publishes = True
            elif tail in _UNIQUE_TAILS:
                self.unique = True
        self.generic_visit(node)

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        pass  # nested functions are analysed as their own unit

    visit_AsyncFunctionDef = visit_FunctionDef


@register
class AtomicWriteChecker(FileChecker):
    code = CODE
    name = "atomic-write"
    description = (
        "durable-state writes must publish scratch files with a unique "
        "per-write name via os.replace/os.rename"
    )

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from self._check_function(ctx, node)

    def _check_function(
        self, ctx: FileContext, function: ast.FunctionDef
    ) -> Iterator[Finding]:
        facts = _FunctionFacts()
        for statement in function.body:
            facts.visit(statement)
        for node, label in facts.writes:
            if not facts.publishes:
                yield ctx.finding(
                    node,
                    CODE,
                    f"{label} in {function.name}() writes the destination "
                    "in place: a crash mid-write leaves a torn record; "
                    "write a scratch file and publish it with os.replace",
                    self.name,
                )
            elif not facts.unique:
                yield ctx.finding(
                    node,
                    CODE,
                    f"{label} in {function.name}() uses a scratch name "
                    "with no per-write uniqueness (secrets.token_hex, "
                    "os.getpid, ...): concurrent writers rename each "
                    "other's scratch away — the DirectoryJobStore race",
                    self.name,
                )
