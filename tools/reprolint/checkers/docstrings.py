"""RPL006 — docstring-contract: the public surface documents itself.

PR 5's executable-docs suite pinned the contract: every name exported
(via ``__all__``) from the blessed API modules carries a docstring with
a runnable ``>>>`` example, and every public method of those exported
classes carries a docstring of its own. This checker is the former
``tools/check_docstrings.py`` folded into reprolint so one tool owns
all of the repository's contracts; the old script remains as a thin
shim over this module.

This is a :class:`RepoChecker`: it imports the modules under contract
(the package must be importable, e.g. ``PYTHONPATH=src``) and anchors
findings at each object's definition line.
"""

from __future__ import annotations

import importlib
import inspect
from pathlib import Path
from typing import Any, Iterable, Iterator

from reprolint.checkers.base import RepoChecker, RepoContext, register
from reprolint.findings import Finding

CODE = "RPL006"

#: Modules whose exported names require example-bearing docstrings when
#: no ``modules`` option is configured.
DEFAULT_MODULES = (
    "repro.audit",
    "repro.service",
    "repro.crowd.backends",
    "repro.data.sharded",
    "repro.serving",
)

#: Shortest docstring that can plausibly document anything.
DEFAULT_MIN_DOC_LENGTH = 20


def _unwrap(member: Any) -> Any:
    """The underlying function of a method-like class attribute."""
    if isinstance(member, (classmethod, staticmethod)):
        return member.__func__
    if isinstance(member, property):
        return member.fget
    return member


def _location(ctx: RepoContext, obj: Any, fallback_module: Any) -> tuple[str, int]:
    """(root-relative path, line) of an object's definition."""
    for target in (obj, fallback_module):
        try:
            source_file = inspect.getsourcefile(target)
        except TypeError:
            source_file = None
        if source_file is None:
            continue
        try:
            path = Path(source_file).resolve().relative_to(ctx.root.resolve())
        except ValueError:
            continue
        line = 1
        if target is obj:
            try:
                _, line = inspect.getsourcelines(obj)
            except (OSError, TypeError):
                line = 1
        return path.as_posix(), line
    return "<unknown>", 1


@register
class DocstringContractChecker(RepoChecker):
    code = CODE
    name = "docstring-contract"
    description = (
        "every __all__ export of the blessed modules carries an "
        "example-bearing docstring; every public method a docstring"
    )

    def check_repo(self, ctx: RepoContext) -> Iterable[Finding]:
        modules = tuple(ctx.options.get("modules", DEFAULT_MODULES))
        min_length = int(ctx.options.get("min_doc_length", DEFAULT_MIN_DOC_LENGTH))
        for module_name in modules:
            yield from self._check_module(ctx, module_name, min_length)

    def _check_module(
        self, ctx: RepoContext, module_name: str, min_length: int
    ) -> Iterator[Finding]:
        try:
            module = importlib.import_module(module_name)
        except Exception as error:  # pragma: no cover - environment issue
            yield Finding(
                path="<unknown>",
                line=1,
                col=0,
                code=CODE,
                message=(
                    f"cannot import {module_name} to check its docstring "
                    f"contract ({error.__class__.__name__}: {error}); run "
                    "with the package on PYTHONPATH"
                ),
                checker=self.name,
            )
            return
        module_path, _ = _location(ctx, module, module)
        if not (module.__doc__ or "").strip():
            yield self._finding(module_path, 1, f"{module_name}: module has no docstring")
        exported = getattr(module, "__all__", None)
        if exported is None:
            yield self._finding(
                module_path, 1, f"{module_name}: module defines no __all__"
            )
            return
        for name in exported:
            obj = getattr(module, name, None)
            if obj is None:
                yield self._finding(
                    module_path, 1, f"{module_name}.{name}: exported but missing"
                )
                continue
            if not (inspect.isclass(obj) or inspect.isroutine(obj)):
                continue  # re-exported constants document themselves elsewhere
            path, line = _location(ctx, obj, module)
            doc = inspect.getdoc(obj) or ""
            if len(doc.strip()) < min_length:
                yield self._finding(
                    path, line, f"{module_name}.{name}: missing docstring"
                )
                continue
            if ">>>" not in doc:
                yield self._finding(
                    path, line, f"{module_name}.{name}: docstring has no '>>>' example"
                )
            if inspect.isclass(obj):
                yield from self._check_methods(
                    ctx, module_name, name, obj, min_length
                )

    def _check_methods(
        self,
        ctx: RepoContext,
        module_name: str,
        class_name: str,
        cls: type,
        min_length: int,
    ) -> Iterator[Finding]:
        for attr_name, raw in vars(cls).items():
            if attr_name.startswith("_"):
                continue
            member = _unwrap(raw)
            if not inspect.isroutine(member) and not isinstance(raw, property):
                continue
            doc = (getattr(member, "__doc__", None) or "").strip()
            if len(doc) < min_length:
                path, line = _location(ctx, member, cls)
                kind = "property" if isinstance(raw, property) else "method"
                yield self._finding(
                    path,
                    line,
                    f"{module_name}.{class_name}.{attr_name}: public "
                    f"{kind} missing docstring",
                )

    def _finding(self, path: str, line: int, message: str) -> Finding:
        return Finding(
            path=path, line=line, col=0, code=CODE, message=message, checker=self.name
        )
