"""RPL004 — error-contract: decoders raise InvalidParameterError, not KeyError.

The library's contract (:mod:`repro.errors`) is that deliberate
failures derive from :class:`ReproError` — a caller feeding a malformed
wire payload or checkpoint to a public decoder gets
``InvalidParameterError`` (or its ``CheckpointVersionError`` subclass),
never a bare ``KeyError``. PRs 5 and 6 both shipped fixes for exactly
this leak (``AuditSession.resume``, ``AuditService.cancel``,
``_Job.from_dict``).

The check is deliberately syntactic and conservative: inside public
functions/methods whose name marks them as decoders (``from_dict``,
``from_payload``, ``resume``, ... — the ``decoder_names`` option), a
subscript on a *parameter* (``data["field"]``) must sit inside a
``try`` whose handler catches ``KeyError`` (or a superclass) and
re-raises. ``data.get("field")`` and subscripts on locals are never
flagged; private helpers (leading underscore) are the wrapped caller's
responsibility.
"""

from __future__ import annotations

import ast
from fnmatch import fnmatch
from typing import Iterable, Iterator

from reprolint.checkers.base import FileChecker, FileContext, register
from reprolint.findings import Finding

CODE = "RPL004"

_DEFAULT_DECODERS = ("from_dict", "from_json", "from_payload", "resume")

#: Exception names that cover KeyError when caught.
_KEY_COVERING = {"KeyError", "LookupError", "Exception", "BaseException"}


def _handler_covers_key_error(handler: ast.ExceptHandler) -> bool:
    """Whether this handler catches KeyError and raises something."""
    caught: list[str] = []
    node = handler.type
    if node is None:
        caught.append("BaseException")  # bare except
    elif isinstance(node, ast.Tuple):
        caught.extend(
            element.id
            for element in node.elts
            if isinstance(element, ast.Name)
        )
    elif isinstance(node, ast.Name):
        caught.append(node.id)
    if not any(name in _KEY_COVERING for name in caught):
        return False
    return any(isinstance(child, ast.Raise) for child in ast.walk(handler))


class _DecoderVisitor(ast.NodeVisitor):
    """Find unprotected parameter subscripts inside one decoder."""

    def __init__(self, params: set[str]) -> None:
        self.params = params
        self.unprotected: list[ast.Subscript] = []
        self._protected_depth = 0

    def visit_Try(self, node: ast.Try) -> None:
        protects = any(
            _handler_covers_key_error(handler) for handler in node.handlers
        )
        if protects:
            self._protected_depth += 1
        for statement in node.body + node.orelse:
            self.visit(statement)
        if protects:
            self._protected_depth -= 1
        for handler in node.handlers:
            self.visit(handler)
        for statement in node.finalbody:
            self.visit(statement)

    def visit_Subscript(self, node: ast.Subscript) -> None:
        if (
            self._protected_depth == 0
            and isinstance(node.ctx, ast.Load)
            and isinstance(node.value, ast.Name)
            and node.value.id in self.params
        ):
            self.unprotected.append(node)
        self.generic_visit(node)

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        pass  # nested defs are their own scope

    visit_AsyncFunctionDef = visit_FunctionDef


@register
class ErrorContractChecker(FileChecker):
    code = CODE
    name = "error-contract"
    description = (
        "public decoders must not let bare KeyError escape — convert "
        "missing fields to InvalidParameterError subclasses"
    )

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        patterns = tuple(ctx.options.get("decoder_names", _DEFAULT_DECODERS))
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if node.name.startswith("_"):
                continue
            if not any(fnmatch(node.name, pattern) for pattern in patterns):
                continue
            yield from self._check_decoder(ctx, node)

    def _check_decoder(
        self, ctx: FileContext, function: ast.FunctionDef
    ) -> Iterator[Finding]:
        arguments = function.args
        params = {
            arg.arg
            for arg in (
                arguments.posonlyargs
                + arguments.args
                + arguments.kwonlyargs
                + ([arguments.vararg] if arguments.vararg else [])
                + ([arguments.kwarg] if arguments.kwarg else [])
            )
        } - {"self", "cls"}
        visitor = _DecoderVisitor(params)
        for statement in function.body:
            visitor.visit(statement)
        for subscript in visitor.unprotected:
            key = ""
            if isinstance(subscript.slice, ast.Constant):
                key = f" {subscript.slice.value!r}"
            yield ctx.finding(
                subscript,
                CODE,
                f"{function.name}() subscripts its input{key} outside a "
                "KeyError guard: a malformed payload escapes as bare "
                "KeyError; wrap in try/except and raise "
                "InvalidParameterError (or use .get with validation)",
                self.name,
            )
