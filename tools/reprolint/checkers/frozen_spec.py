"""RPL003 — frozen-spec: payload dataclasses frozen, fields codec-covered.

Specs and wire payloads are identity: they get hashed into idempotency
keys, embedded in checkpoints, and compared for equality across process
boundaries. That only works if they are immutable (``frozen=True``) and
if serialization is *total* — every field travels through
``to_dict``/``from_dict``, because a field the codec forgets is a field
that silently resets on resume.

Two layers of checking:

* **AST** (per file): every ``@dataclass`` in the configured paths must
  say ``frozen=True``; for classes defining ``to_dict``/``from_dict``,
  every non-ClassVar, non-underscore field name must appear as a string
  key in both (modulo the reviewed ``field_aliases`` renames).
* **import** (``codec_tables`` option): the module's kind-dispatch
  table is imported and every ``kind``-tagged payload dataclass must be
  registered in it — an unregistered spec would serialize fine and then
  fail to decode.
"""

from __future__ import annotations

import ast
import importlib
from dataclasses import is_dataclass
from typing import Any, Iterable, Iterator, Mapping

from reprolint.checkers.base import (
    FileChecker,
    FileContext,
    RepoChecker,
    RepoContext,
    dotted_name,
    register,
)
from reprolint.findings import Finding

CODE = "RPL003"


def _dataclass_decorator(node: ast.ClassDef) -> ast.expr | None:
    for decorator in node.decorator_list:
        target = decorator.func if isinstance(decorator, ast.Call) else decorator
        dotted = dotted_name(target)
        if dotted in ("dataclass", "dataclasses.dataclass"):
            return decorator
    return None


def _is_frozen(decorator: ast.expr) -> bool:
    if not isinstance(decorator, ast.Call):
        return False
    return any(
        keyword.arg == "frozen"
        and isinstance(keyword.value, ast.Constant)
        and keyword.value.value is True
        for keyword in decorator.keywords
    )


def _is_classvar(annotation: ast.expr) -> bool:
    target = annotation.value if isinstance(annotation, ast.Subscript) else annotation
    dotted = dotted_name(target)
    return dotted in ("ClassVar", "typing.ClassVar")


def _field_names(node: ast.ClassDef) -> list[tuple[str, ast.AnnAssign]]:
    names: list[tuple[str, ast.AnnAssign]] = []
    for statement in node.body:
        if not isinstance(statement, ast.AnnAssign):
            continue
        if not isinstance(statement.target, ast.Name):
            continue
        name = statement.target.id
        if name.startswith("_") or _is_classvar(statement.annotation):
            continue
        names.append((name, statement))
    return names


def _method(node: ast.ClassDef, name: str) -> ast.FunctionDef | None:
    for statement in node.body:
        if isinstance(statement, ast.FunctionDef) and statement.name == name:
            return statement
    return None


def _string_constants(function: ast.FunctionDef) -> set[str]:
    return {
        node.value
        for node in ast.walk(function)
        if isinstance(node, ast.Constant) and isinstance(node.value, str)
    }


@register
class FrozenSpecChecker(FileChecker):
    code = CODE
    name = "frozen-spec"
    description = (
        "payload dataclasses must be frozen=True with every field "
        "covered by to_dict/from_dict and registered in the codec table"
    )

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        aliases: Mapping[str, Mapping[str, str]] = ctx.options.get("field_aliases", {})
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ClassDef):
                yield from self._check_class(ctx, node, aliases.get(node.name, {}))

    def _check_class(
        self,
        ctx: FileContext,
        node: ast.ClassDef,
        aliases: Mapping[str, str],
    ) -> Iterator[Finding]:
        decorator = _dataclass_decorator(node)
        if decorator is None:
            return
        if not _is_frozen(decorator):
            yield ctx.finding(
                node,
                CODE,
                f"dataclass {node.name} is not frozen=True: payload types "
                "are hashed and compared for identity; a mutable one "
                "breaks idempotency keys and checkpoint equality",
                self.name,
            )
        to_dict = _method(node, "to_dict")
        from_dict = _method(node, "from_dict")
        if to_dict is None or from_dict is None:
            yield ctx.finding(
                node,
                CODE,
                f"payload dataclass {node.name} lacks "
                f"{'to_dict' if to_dict is None else 'from_dict'}(): "
                "serialized payload types must round-trip losslessly",
                self.name,
            )
            return
        writer_keys = _string_constants(to_dict)
        reader_keys = _string_constants(from_dict)
        for field_name, statement in _field_names(node):
            key = aliases.get(field_name, field_name)
            for role, keys in (("to_dict", writer_keys), ("from_dict", reader_keys)):
                if key not in keys:
                    yield ctx.finding(
                        statement,
                        CODE,
                        f"field {node.name}.{field_name} is not covered by "
                        f"{role}() (expected key {key!r}): an uncovered "
                        "field silently resets on every round-trip",
                        self.name,
                    )


@register
class CodecTableChecker(RepoChecker):
    """The import half of RPL003: the kind-dispatch table is complete."""

    code = "RPL003-table"
    name = "frozen-spec-table"
    description = (
        "every kind-tagged payload dataclass is registered in its "
        "module's codec dispatch table (checked by importing it)"
    )

    def check_repo(self, ctx: RepoContext) -> Iterable[Finding]:
        tables: Mapping[str, tuple[str, str]] = ctx.options.get("codec_tables", {})
        for path, (module_name, table_name) in sorted(tables.items()):
            if path not in ctx.files:
                continue
            yield from self._check_table(path, module_name, table_name)

    def _check_table(
        self, path: str, module_name: str, table_name: str
    ) -> Iterator[Finding]:
        try:
            module = importlib.import_module(module_name)
        except Exception as error:  # pragma: no cover - environment issue
            yield Finding(
                path=path,
                line=1,
                col=0,
                code=CODE,
                message=(
                    f"cannot import {module_name} to verify its codec "
                    f"table ({error.__class__.__name__}: {error}); run "
                    "with the package on PYTHONPATH"
                ),
                checker=self.name,
            )
            return
        table: Mapping[str, Any] = getattr(module, table_name, None) or {}
        registered = set(table.values())
        for name, obj in sorted(vars(module).items()):
            if not isinstance(obj, type) or not is_dataclass(obj):
                continue
            if getattr(obj, "__module__", None) != module_name:
                continue
            kind = getattr(obj, "kind", None)
            if not isinstance(kind, str):
                continue
            if obj not in registered:
                yield Finding(
                    path=path,
                    line=1,
                    col=0,
                    code=CODE,
                    message=(
                        f"dataclass {name} (kind={kind!r}) is not "
                        f"registered in {module_name}.{table_name}: it "
                        "serializes but can never be decoded back"
                    ),
                    checker=self.name,
                )
            elif table.get(kind) is not obj:
                yield Finding(
                    path=path,
                    line=1,
                    col=0,
                    code=CODE,
                    message=(
                        f"{module_name}.{table_name}[{kind!r}] does not "
                        f"map back to {name}: kind tag and registration "
                        "disagree"
                    ),
                    checker=self.name,
                )
