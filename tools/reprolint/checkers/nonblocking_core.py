"""RPL010 — nonblocking engine core.

``QueryEngine.pump``/``absorb`` are the non-blocking half of the
engine's contract: callers overlap many audits by pumping each engine
in turn, so *any* wait on this path — ``time.sleep``, a futures
``wait``/blocking ``result``, a zero-argument ``.join()``, socket
accept/recv, or the backend's own blocking rendezvous
(``next_done``/``gather``) — stalls every overlapped audit at once.
The rule walks the synchronous call closure of the configured entry
points (spawn edges are excluded: handing work to an executor is
exactly what the non-blocking path is *supposed* to do) and flags call
sites matching the blocking patterns.

``str.join``/``os.path.join`` always take a positional argument, so
only zero-positional-arg ``.join()`` calls count as thread joins.

Options
-------
``entry_points``
    Specs of the non-blocking entry points.
``blocking``
    fnmatch patterns over dotted call names treated as blocking.
``follow``
    Path globs the closure is allowed to grow into (keeps the
    name-match over-approximation from dragging the HTTP client's
    socket calls into the engine's closure).
``model_include``
    File set the call graph is built over.
"""

from __future__ import annotations

from fnmatch import fnmatch
from typing import Iterable

from reprolint.analysis import get_call_graph, reachable
from reprolint.checkers.base import RepoChecker, RepoContext, register
from reprolint.findings import Finding

DEFAULT_BLOCKING = (
    "time.sleep",
    "*.sleep",
    "sleep",
    "concurrent.futures.wait",
    "futures.wait",
    "wait",
    "select.select",
    "*.recv",
    "*.accept",
    "*.connect",
    "*.next_done",
    "next_done",
    "*.gather",
)


@register
class NonblockingCoreChecker(RepoChecker):
    """Flag blocking waits reachable from the engine's pump/absorb."""

    code = "RPL010"
    name = "nonblocking-core"
    description = (
        "no sleep/join/blocking waits reachable from the engine's "
        "non-blocking entry points"
    )

    def check_repo(self, ctx: RepoContext) -> Iterable[Finding]:
        graph = get_call_graph(
            ctx,
            include=tuple(ctx.options.get("model_include", ctx.include)),
            exclude=ctx.exclude,
        )
        blocking = tuple(ctx.options.get("blocking", DEFAULT_BLOCKING))
        follow = ctx.options.get("follow")
        entries: set[str] = set()
        for spec in ctx.options.get("entry_points", ()):
            entries.update(
                fn.qualname for fn in graph.project.match_functions(spec)
            )

        hot = reachable(
            graph,
            sorted(entries),
            within=tuple(follow) if follow is not None else None,
        )
        for qualname in sorted(hot):
            fn = graph.project.functions[qualname]
            if not ctx.in_report_scope(fn.path):
                continue
            facts = graph.facts.get(qualname)
            if facts is None:
                continue
            for call in facts.calls:
                is_join = (
                    call.name.split(".")[-1] == "join"
                    and "." in call.name
                    and call.n_args == 0
                    and not call.name.startswith(("os.path", "posixpath"))
                )
                if not is_join and not any(
                    fnmatch(call.name, pattern) for pattern in blocking
                ):
                    continue
                yield ctx.finding(
                    fn.path,
                    call.node,
                    self.code,
                    (
                        f"blocking call `{call.name}` in `{fn.display}`, "
                        "which is reachable from a non-blocking engine "
                        "entry point — move the wait to the drain loop"
                    ),
                    self.name,
                )
