"""RPL008 — rng-stream discipline.

The replay guarantees (resume re-asks zero queries, engine mode is
bit-identical to sequential mode) require every random draw on an audit
path to come from the *one* generator minted at the entry point and
threaded through call signatures.  A function reachable from the
configured entry points that mints its own generator mid-path —
``np.random.default_rng(...)``, seeded or not, or a ``Generator(...)``
construction — silently forks the stream: replays that take a
different route to the same function draw different numbers.

RPL001 already bans *unseeded* generators everywhere; this rule is the
interprocedural complement that also bans *seeded* mid-path minting.

Options
-------
``entry_points``
    Specs (``Class.method`` / ``module:function`` fnmatch patterns) of
    the stepper/session/service entry points whose reachable closure is
    checked.
``rng_factories``
    Display-name patterns allowed to mint (the entry points themselves
    and reviewed content-derived mints, e.g. seeding from a submission
    digest).  Constructors are always allowed: minting at construction
    time is the sanctioned way a session acquires its stream.
``model_include``
    File set the call graph is built over (default: the rule's
    include).
"""

from __future__ import annotations

import ast
from fnmatch import fnmatch
from typing import Iterable

from reprolint.analysis import get_call_graph, reachable
from reprolint.checkers.base import RepoChecker, RepoContext, register
from reprolint.findings import Finding

_MINT_TAILS = ("default_rng", "RandomState", "Generator", "PCG64", "Philox")
_ALWAYS_ALLOWED = ("*__init__", "*__post_init__")


@register
class RngDisciplineChecker(RepoChecker):
    """Flag mid-path generator minting on replay-critical paths."""

    code = "RPL008"
    name = "rng-discipline"
    description = (
        "functions reachable from audit entry points must receive their "
        "rng, not mint one"
    )

    def check_repo(self, ctx: RepoContext) -> Iterable[Finding]:
        graph = get_call_graph(
            ctx,
            include=tuple(ctx.options.get("model_include", ctx.include)),
            exclude=ctx.exclude,
        )
        factories = (
            tuple(ctx.options.get("rng_factories", ())) + _ALWAYS_ALLOWED
        )
        entries: set[str] = set()
        for spec in ctx.options.get("entry_points", ()):
            entries.update(
                fn.qualname for fn in graph.project.match_functions(spec)
            )

        # Module-level names bound to a generator (``_RNG = default_rng(7)``)
        # are a shared stream any caller can advance — loading one
        # mid-path is the same discipline violation as minting.
        module_rngs: dict[str, set[str]] = {}
        for mod in graph.project.modules.values():
            names = {
                name
                for name, value in mod.assigns.items()
                if _dump_tail(value) in _MINT_TAILS
            }
            if names:
                module_rngs[mod.path] = names

        hot = reachable(graph, sorted(entries), include_spawns=True)
        for qualname in sorted(hot):
            fn = graph.project.functions[qualname]
            if any(fnmatch(fn.display, pattern) for pattern in factories):
                continue
            if not ctx.in_report_scope(fn.path):
                continue
            facts = graph.facts.get(qualname)
            if facts is None:
                continue
            for call in facts.calls:
                tail = call.name.split(".")[-1]
                if tail not in _MINT_TAILS:
                    continue
                yield ctx.finding(
                    fn.path,
                    call.node,
                    self.code,
                    (
                        f"`{fn.display}` mints a generator via "
                        f"`{call.name}` but is reachable from an audit "
                        "entry point — thread the rng through the call "
                        "signature instead"
                    ),
                    self.name,
                )
            shared_rngs = module_rngs.get(fn.path, set())
            for name in sorted(shared_rngs & facts.loaded_names):
                yield ctx.finding(
                    fn.path,
                    fn.node,
                    self.code,
                    (
                        f"`{fn.display}` reads the module-level generator "
                        f"`{name}` on an audit path — pass the rng as a "
                        "parameter instead"
                    ),
                    self.name,
                )


def _dump_tail(value: object) -> str:
    """The call-name tail of a module-level assignment's value expr."""
    if isinstance(value, ast.Call):
        func = value.func
        if isinstance(func, ast.Attribute):
            return func.attr
        if isinstance(func, ast.Name):
            return func.id
    return ""
