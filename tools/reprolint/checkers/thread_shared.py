"""RPL007 — thread-shared-mutation.

Attribute state mutated on a code path that runs on a worker thread
(anything handed to a ``ThreadPoolExecutor``/``threading.Thread``, plus
the configured thread roots such as gateway request handlers) must be
mutated under a held lock.  The dataflow starts at every spawn-edge
target, walks the approximate call graph, and propagates "a lock is
held" along call edges: ``with self._lock: self._flush()`` protects the
whole ``_flush`` subtree on that path.  A function reached by *any*
unguarded path is checked; its lock-free ``self.*``/shared-attribute
mutations are findings.

Options
-------
``thread_roots``
    Extra entry specs (``Class.method`` fnmatch patterns, optionally
    ``module:`` prefixed) that run on their own thread without a
    visible spawn site (per-connection HTTP handlers).
``instance_per_thread``
    Class names whose instances are created per thread — their
    ``self.*`` mutations are thread-local by construction.
``exempt_functions``
    Display-name patterns never checked (constructors by default: the
    object is not shared while it is being built).
``lock_names`` / ``model_include``
    Lock-recognition patterns and the file set the call graph is built
    over (defaults: the analysis defaults / the rule's include).
"""

from __future__ import annotations

from fnmatch import fnmatch
from typing import Iterable

from reprolint.analysis import (
    DEFAULT_LOCK_NAMES,
    get_call_graph,
    reached_unguarded,
)
from reprolint.checkers.base import RepoChecker, RepoContext, register
from reprolint.findings import Finding

_DEFAULT_EXEMPT = ("*__init__", "*__post_init__", "*__enter__", "*__exit__")


@register
class ThreadSharedMutationChecker(RepoChecker):
    """Flag lock-free attribute mutations on thread-reachable paths."""

    code = "RPL007"
    name = "thread-shared-mutation"
    description = (
        "attribute mutations reachable from executor/thread targets "
        "must hold a lock"
    )

    def check_repo(self, ctx: RepoContext) -> Iterable[Finding]:
        lock_names = tuple(ctx.options.get("lock_names", DEFAULT_LOCK_NAMES))
        graph = get_call_graph(
            ctx,
            include=tuple(ctx.options.get("model_include", ctx.include)),
            exclude=ctx.exclude,
            lock_names=lock_names,
        )
        per_thread = set(ctx.options.get("instance_per_thread", ()))
        exempt = tuple(ctx.options.get("exempt_functions", ())) + _DEFAULT_EXEMPT

        # Every spawn target is an unguarded root — even when the spawn
        # site sits inside a lock, the submitting thread releases that
        # lock before the task actually runs on the pool thread.
        roots: set[str] = set()
        for edge in graph.spawns:
            caller = graph.project.functions.get(edge.caller)
            if caller is not None and caller.cls in per_thread:
                continue
            roots.add(edge.callee)
        for spec in ctx.options.get("thread_roots", ()):
            for fn in graph.project.match_functions(spec):
                roots.add(fn.qualname)

        follow = ctx.options.get("follow")
        hot = reached_unguarded(
            graph,
            sorted(roots),
            guard="lock",
            within=tuple(follow) if follow is not None else None,
        )

        for qualname in sorted(hot):
            fn = graph.project.functions[qualname]
            if any(fnmatch(fn.display, pattern) for pattern in exempt):
                continue
            if not ctx.in_report_scope(fn.path):
                continue
            facts = graph.facts.get(qualname)
            if facts is None:
                continue
            self_is_private = fn.cls in per_thread
            for mutation in facts.mutations:
                if "lock" in mutation.guards:
                    continue
                if self_is_private and mutation.target.split(".")[0] in (
                    "self",
                    "cls",
                ):
                    continue
                yield ctx.finding(
                    fn.path,
                    mutation.node,
                    self.code,
                    (
                        f"`{mutation.target}` is mutated without a lock in "
                        f"`{fn.display}`, which is reachable from a thread "
                        "target — guard the mutation or merge thread-locally"
                    ),
                    self.name,
                )
