"""Approximate call graph over the project model.

Resolution is deliberately an over-approximation of runtime dispatch
(documented in ``docs/guide/invariants.md``):

* ``name(...)`` — nested function, then module function, then an
  imported project symbol, then a class in scope (edge to ``__init__``);
* ``self.method(...)`` — resolved through the enclosing class and its
  named bases; if the hierarchy does not define it, *every* project
  method of that name is a candidate;
* ``obj.method(...)`` — every project method of that name, unless the
  name is in the builtin-container stoplist (``append``/``get``/…);
* ``ClassName(...)`` — edge to ``ClassName.__init__``;
* executor dispatch — ``pool.submit(fn, …)``, ``executor.map(fn, …)``
  and ``threading.Thread(target=fn)`` produce a **spawn** edge to
  ``fn``: the callback runs on another thread, so spawn edges seed
  thread-reachability (RPL007) but are *not* synchronous-call edges
  (RPL010 ignores them).

Every edge carries the guard context of its call site, so dataflow can
propagate "called under a held lock" / "called under try-FNF" along the
graph.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from reprolint.analysis.facts import (
    DEFAULT_LOCK_NAMES,
    CallFact,
    FunctionFacts,
    collect_facts,
    dotted,
)
from reprolint.analysis.model import FunctionInfo, ProjectModel

#: Attribute calls with these names never resolve to project methods —
#: they are overwhelmingly builtin container/str/path operations.
NAME_MATCH_STOPLIST = frozenset(
    {
        "append", "extend", "insert", "remove", "pop", "popitem", "clear",
        "add", "discard", "update", "setdefault", "get", "keys", "values",
        "items", "copy", "sort", "reverse", "count", "index",
        "join", "split", "strip", "lstrip", "rstrip", "startswith",
        "endswith", "lower", "upper", "replace", "format", "encode",
        "decode", "read", "write", "close", "flush", "seek",
        "read_text", "write_text", "read_bytes", "write_bytes", "open",
        "exists", "unlink", "mkdir", "rename", "glob", "rglob",
        "acquire", "release", "notify", "notify_all",
        "submit", "map", "shutdown", "result", "done", "cancel",
        "get_nowait", "put_nowait", "task_done",
    }
)

#: Receiver-name patterns treated as executor/thread dispatchers.
_EXECUTOR_TAILS = ("submit", "map")
_THREAD_CLASSES = ("Thread", "Timer")


@dataclass(frozen=True)
class CallEdge:
    """One resolved edge in the graph."""

    caller: str  # qualname
    callee: str  # qualname
    kind: str  # "direct" | "name-match" | "spawn"
    guards: frozenset[str]
    line: int


@dataclass
class CallGraph:
    """Edges plus the per-function facts they were resolved from."""

    project: ProjectModel
    facts: dict[str, FunctionFacts] = field(default_factory=dict)
    edges: dict[str, list[CallEdge]] = field(default_factory=dict)
    spawns: list[CallEdge] = field(default_factory=list)

    def out_edges(self, qualname: str) -> list[CallEdge]:
        """Synchronous call edges leaving ``qualname``."""
        return self.edges.get(qualname, [])

    def in_edges(self, qualname: str) -> list[CallEdge]:
        """Synchronous call edges arriving at ``qualname``."""
        return [
            edge
            for edges in self.edges.values()
            for edge in edges
            if edge.callee == qualname
        ]


class _Resolver:
    def __init__(self, project: ProjectModel) -> None:
        self.project = project

    def resolve(
        self, fn: FunctionInfo, call: CallFact
    ) -> list[tuple[FunctionInfo, str]]:
        """Candidate targets for one call, with the edge kind."""
        name = call.name
        if name.startswith("?."):
            return self._by_method_name(name[2:], kind="name-match")
        parts = name.split(".")
        if len(parts) == 1:
            return self._plain_name(fn, parts[0])
        if parts[0] == "self" and fn.cls is not None:
            return self._self_call(fn, parts)
        if parts[0] == "cls" and fn.cls is not None:
            return self._self_call(fn, parts)
        # Module-qualified project call: ``module_alias.func(...)``.
        mod = self.project.modules.get(fn.path)
        if mod is not None and parts[0] in mod.imports:
            resolved = self._imported(mod.imports[parts[0]] + "." + ".".join(parts[1:]))
            if resolved:
                return resolved
            # Known import that did not resolve into the project:
            # external call, never a name-match candidate.
            if len(parts) == 2:
                return []
        return self._by_method_name(parts[-1], kind="name-match")

    def _plain_name(self, fn: FunctionInfo, name: str) -> list[tuple[FunctionInfo, str]]:
        if name in fn.locals_map:
            target = self.project.functions.get(fn.locals_map[name])
            return [(target, "direct")] if target else []
        # A sibling nested function (both defined in the same parent).
        if "." in fn.display:
            parent_display = fn.display.rsplit(".<locals>.", 1)[0]
            parent = self.project.functions.get(f"{fn.path}::{parent_display}")
            if parent and name in parent.locals_map:
                target = self.project.functions.get(parent.locals_map[name])
                if target:
                    return [(target, "direct")]
        mod = self.project.modules.get(fn.path)
        if mod is None:
            return []
        if name in mod.functions:
            return [(mod.functions[name], "direct")]
        if name in mod.classes:
            init = mod.classes[name].methods.get("__init__")
            return [(init, "direct")] if init else []
        if name in mod.imports:
            return self._imported(mod.imports[name])
        # Same-class method referenced bare inside a method body
        # (rare; comprehension helpers) — not resolved.
        return []

    def _self_call(
        self, fn: FunctionInfo, parts: list[str]
    ) -> list[tuple[FunctionInfo, str]]:
        method = parts[-1]
        if len(parts) == 2:
            for cls in self.project.resolve_class(fn.cls or ""):
                if cls.path != fn.path:
                    continue
                found = self.project.method_in_hierarchy(cls, method)
                if found is not None:
                    return [(found, "direct")]
            return self._by_method_name(method, kind="name-match")
        # ``self._attr.method(...)`` — attribute object dispatch.
        return self._by_method_name(method, kind="name-match")

    def _imported(self, dotted: str) -> list[tuple[FunctionInfo, str]]:
        """Resolve a fully-dotted imported symbol into the project."""
        module_dotted, _, symbol = dotted.rpartition(".")
        mod = self.project.module_by_dotted(module_dotted)
        if mod is None:
            # ``from package import module`` style: the symbol itself
            # may be a module path, or a re-export we cannot see.
            return []
        if symbol in mod.functions:
            return [(mod.functions[symbol], "direct")]
        if symbol in mod.classes:
            init = mod.classes[symbol].methods.get("__init__")
            return [(init, "direct")] if init else []
        return []

    def _by_method_name(
        self, method: str, *, kind: str
    ) -> list[tuple[FunctionInfo, str]]:
        if method in NAME_MATCH_STOPLIST:
            return []
        return [(fn, kind) for fn in self.project.methods_by_name.get(method, [])]

    def resolve_callback(
        self, fn: FunctionInfo, call: CallFact
    ) -> FunctionInfo | None:
        """The project function a spawn site hands to another thread."""
        node = call.node
        target_expr = None
        if call.name.split(".")[-1] in _EXECUTOR_TAILS and node.args:
            target_expr = node.args[0]
        for keyword in node.keywords:
            if keyword.arg == "target":
                target_expr = keyword.value
        if target_expr is None:
            return None
        name = dotted(target_expr)
        if name is None:
            return None
        fact = CallFact(node=node, name=name, n_args=0, guards=call.guards)
        for target, _kind in self.resolve(fn, fact):
            return target
        return None


def _is_spawn(call: CallFact) -> bool:
    tail = call.name.split(".")[-1]
    if tail in _EXECUTOR_TAILS and len(call.name.split(".")) > 1:
        receiver = call.name.rsplit(".", 1)[0].lower()
        return any(
            hint in receiver for hint in ("pool", "executor", "?")
        )
    return tail in _THREAD_CLASSES


def build_call_graph(
    project: ProjectModel,
    lock_names: Sequence[str] = DEFAULT_LOCK_NAMES,
) -> CallGraph:
    """Collect facts for every function and resolve the edges."""
    graph = CallGraph(project=project)
    resolver = _Resolver(project)
    for qualname, fn in project.functions.items():
        facts = collect_facts(fn, lock_names)
        graph.facts[qualname] = facts
        out: list[CallEdge] = []
        for call in facts.calls:
            if _is_spawn(call):
                callback = resolver.resolve_callback(fn, call)
                if callback is not None:
                    graph.spawns.append(
                        CallEdge(
                            caller=qualname,
                            callee=callback.qualname,
                            kind="spawn",
                            guards=call.guards,
                            line=call.node.lineno,
                        )
                    )
                continue
            for target, kind in resolver.resolve(fn, call):
                out.append(
                    CallEdge(
                        caller=qualname,
                        callee=target.qualname,
                        kind=kind,
                        guards=call.guards,
                        line=call.node.lineno,
                    )
                )
        graph.edges[qualname] = out
    return graph
