"""Forward dataflow over the call graph: reachability with guard state.

The core query every interprocedural rule needs is "which functions are
reachable from these entry points, and did any path arrive *without* a
given guard held?".  States are ``(function, guarded)`` pairs; calling
through a guarded site (``with self._lock: self._flush()``) protects
the whole callee subtree along that path, while a second, unguarded
path to the same function still reaches it unguarded — exactly the
interleaving a data race needs.
"""

from __future__ import annotations

from fnmatch import fnmatch
from typing import Callable, Iterable, Sequence

from reprolint.analysis.callgraph import CallEdge, CallGraph


def _follow(
    edge: CallEdge,
    *,
    kinds: Sequence[str],
    within: Sequence[str] | None,
    graph: CallGraph,
) -> bool:
    if edge.kind not in kinds:
        return False
    if within is None:
        return True
    target = graph.project.functions.get(edge.callee)
    if target is None:
        return False
    return any(fnmatch(target.path, pattern) for pattern in within)


def reachable(
    graph: CallGraph,
    entries: Iterable[str],
    *,
    kinds: Sequence[str] = ("direct", "name-match"),
    include_spawns: bool = False,
    within: Sequence[str] | None = None,
) -> set[str]:
    """Qualnames reachable from ``entries`` along the selected edges."""
    seen: set[str] = set()
    stack = [entry for entry in entries if entry in graph.project.functions]
    while stack:
        current = stack.pop()
        if current in seen:
            continue
        seen.add(current)
        out: list[CallEdge] = list(graph.out_edges(current))
        if include_spawns:
            out += [edge for edge in graph.spawns if edge.caller == current]
        for edge in out:
            if edge.kind == "spawn" and not include_spawns:
                continue
            if edge.kind != "spawn" and not _follow(
                edge, kinds=kinds, within=within, graph=graph
            ):
                continue
            if edge.callee not in seen:
                stack.append(edge.callee)
    return seen


def reached_unguarded(
    graph: CallGraph,
    entries: Iterable[str],
    *,
    guard: str,
    kinds: Sequence[str] = ("direct", "name-match"),
    within: Sequence[str] | None = None,
    stop: Callable[[str], bool] | None = None,
) -> set[str]:
    """Functions some path reaches without ``guard`` ever being held.

    Entries start unguarded.  Traversing an edge whose call site holds
    the guard protects the callee subtree along that path; a function
    is in the result iff at least one path arrives with the guard not
    held.  ``stop`` prunes traversal *through* a function (its own body
    is still reported if reached unguarded).
    """
    unguarded: set[str] = set()
    visited: set[tuple[str, bool]] = set()
    stack: list[tuple[str, bool]] = [
        (entry, False)
        for entry in entries
        if entry in graph.project.functions
    ]
    while stack:
        current, protected = stack.pop()
        if (current, protected) in visited:
            continue
        visited.add((current, protected))
        if not protected:
            unguarded.add(current)
        if stop is not None and stop(current):
            continue
        for edge in graph.out_edges(current):
            if not _follow(edge, kinds=kinds, within=within, graph=graph):
                continue
            next_protected = protected or guard in edge.guards
            if (edge.callee, next_protected) not in visited:
                stack.append((edge.callee, next_protected))
    return unguarded
