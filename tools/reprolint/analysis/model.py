"""Project model: modules, classes, functions, and a symbol table.

The model is the first of the three analysis layers (model → facts →
call graph).  It parses every in-scope source once and records, per
module: the import map (local alias → dotted target), top-level
functions, classes with their methods and base-class names, and
module-level assignments.  Nested functions are modelled as their own
:class:`FunctionInfo` (qualified ``outer.<locals>.inner``) so callbacks
handed to executors resolve like any other callable.

Everything is name-based and approximate by design: the resolver in
:mod:`reprolint.analysis.callgraph` over-approximates dispatch, which
is the right default for the safety rules built on top (a missed edge
hides a bug; a spurious edge at worst asks for a reviewed allowlist
entry).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from fnmatch import fnmatch
from typing import Iterator, Mapping

FunctionNode = ast.FunctionDef | ast.AsyncFunctionDef


@dataclass
class FunctionInfo:
    """One function, method, or nested function in the project."""

    qualname: str  # "<path>::<display>" — globally unique
    path: str  # posix, root-relative
    module: str  # dotted module name ("repro.engine.cache")
    display: str  # "Class.method", "func", or "outer.<locals>.inner"
    name: str  # the bare name ("method")
    cls: str | None  # simple name of the enclosing class, if a method
    node: FunctionNode
    locals_map: dict[str, str] = field(default_factory=dict)  # nested defs


@dataclass
class ClassInfo:
    """One class definition and its method table."""

    name: str
    path: str
    module: str
    bases: tuple[str, ...]  # simple names of base classes
    methods: dict[str, FunctionInfo] = field(default_factory=dict)
    node: ast.ClassDef | None = None


@dataclass
class ModuleInfo:
    """One parsed module: imports, symbols, module-level assignments."""

    path: str
    module: str
    tree: ast.Module
    imports: dict[str, str] = field(default_factory=dict)  # alias -> dotted
    functions: dict[str, FunctionInfo] = field(default_factory=dict)
    classes: dict[str, ClassInfo] = field(default_factory=dict)
    assigns: dict[str, ast.expr] = field(default_factory=dict)


@dataclass
class ProjectModel:
    """The whole-project symbol table the call graph resolves against."""

    modules: dict[str, ModuleInfo] = field(default_factory=dict)
    functions: dict[str, FunctionInfo] = field(default_factory=dict)
    classes: dict[str, list[ClassInfo]] = field(default_factory=dict)
    methods_by_name: dict[str, list[FunctionInfo]] = field(default_factory=dict)

    def module_by_dotted(self, dotted: str) -> ModuleInfo | None:
        """The module whose dotted name is ``dotted``, if scanned."""
        for info in self.modules.values():
            if info.module == dotted:
                return info
        return None

    def resolve_class(self, name: str) -> list[ClassInfo]:
        """Every scanned class with simple name ``name``."""
        return self.classes.get(name, [])

    def method_in_hierarchy(
        self, cls: ClassInfo, method: str, _seen: frozenset[str] = frozenset()
    ) -> FunctionInfo | None:
        """``method`` on ``cls`` or (breadth-first) its named bases."""
        if method in cls.methods:
            return cls.methods[method]
        seen = _seen | {cls.name}
        for base in cls.bases:
            if base in seen:
                continue
            for candidate in self.resolve_class(base):
                found = self.method_in_hierarchy(candidate, method, seen)
                if found is not None:
                    return found
        return None

    def match_functions(self, spec: str) -> list[FunctionInfo]:
        """Functions matching an entry spec.

        Specs are fnmatch patterns over the display name
        (``QueryEngine.pump``, ``run_*``), optionally prefixed with a
        dotted module filter: ``repro.serving.worker:run_worker``.
        """
        module_filter = None
        if ":" in spec:
            module_filter, spec = spec.split(":", 1)
        return [
            fn
            for fn in self.functions.values()
            if fnmatch(fn.display, spec)
            and (module_filter is None or fnmatch(fn.module, module_filter))
        ]


def module_name_for(path: str) -> str:
    """Dotted module name for a root-relative posix path."""
    parts = path[:-3].split("/") if path.endswith(".py") else path.split("/")
    if parts and parts[0] in ("src", "tools"):
        parts = parts[1:]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


def _record_imports(tree: ast.Module, imports: dict[str, str]) -> None:
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                imports[alias.asname or alias.name.split(".")[0]] = alias.name
        elif isinstance(node, ast.ImportFrom) and node.module and not node.level:
            for alias in node.names:
                imports[alias.asname or alias.name] = f"{node.module}.{alias.name}"


def _iter_nested(node: FunctionNode) -> Iterator[FunctionNode]:
    """Immediate nested defs of ``node`` (not recursing into them)."""
    stack: list[ast.AST] = list(node.body)
    while stack:
        child = stack.pop()
        if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield child
        elif not isinstance(child, ast.ClassDef):
            stack.extend(ast.iter_child_nodes(child))


def _add_function(
    project: ProjectModel,
    mod: ModuleInfo,
    node: FunctionNode,
    display: str,
    cls: str | None,
) -> FunctionInfo:
    info = FunctionInfo(
        qualname=f"{mod.path}::{display}",
        path=mod.path,
        module=mod.module,
        display=display,
        name=node.name,
        cls=cls,
        node=node,
    )
    project.functions[info.qualname] = info
    for nested in _iter_nested(node):
        child = _add_function(
            project, mod, nested, f"{display}.<locals>.{nested.name}", cls
        )
        info.locals_map[nested.name] = child.qualname
    return info


def build_project(sources: Mapping[str, str]) -> ProjectModel:
    """Parse ``sources`` (path → text) into a :class:`ProjectModel`.

    Files that fail to parse are skipped — the lint engine reports the
    parse failure separately as an RPL000 finding.
    """
    project = ProjectModel()
    for path in sorted(sources):
        try:
            tree = ast.parse(sources[path], filename=path)
        except (SyntaxError, ValueError):
            continue
        mod = ModuleInfo(path=path, module=module_name_for(path), tree=tree)
        _record_imports(tree, mod.imports)
        for node in tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                mod.functions[node.name] = _add_function(
                    project, mod, node, node.name, None
                )
            elif isinstance(node, ast.ClassDef):
                bases = []
                for base in node.bases:
                    text = base.attr if isinstance(base, ast.Attribute) else None
                    if isinstance(base, ast.Name):
                        text = base.id
                    if text:
                        bases.append(text)
                cls = ClassInfo(
                    name=node.name,
                    path=path,
                    module=mod.module,
                    bases=tuple(bases),
                    node=node,
                )
                for item in node.body:
                    if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        method = _add_function(
                            project, mod, item, f"{node.name}.{item.name}", node.name
                        )
                        cls.methods[item.name] = method
                        project.methods_by_name.setdefault(item.name, []).append(method)
                mod.classes[node.name] = cls
                project.classes.setdefault(node.name, []).append(cls)
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        mod.assigns[target.id] = node.value
            elif isinstance(node, ast.AnnAssign):
                if isinstance(node.target, ast.Name) and node.value is not None:
                    mod.assigns[node.target.id] = node.value
        project.modules[path] = mod
    return project
