"""Repo-scale static analysis: model, facts, call graph, dataflow.

Layered bottom-up:

* :mod:`reprolint.analysis.model` — module graph + symbol table;
* :mod:`reprolint.analysis.facts` — per-function calls/mutations with
  the guard context (``with <lock>``, ``try``/``FileNotFoundError``)
  each site sits under;
* :mod:`reprolint.analysis.callgraph` — approximate resolution into
  call and spawn edges;
* :mod:`reprolint.analysis.dataflow` — reachability queries with guard
  propagation along edges.

:func:`get_call_graph` is the entry point repo checkers use: it builds
the model + graph once per (file set, lock patterns) and caches it in
the run-shared ``RepoContext.shared`` dict, so the four interprocedural
rules pay for one construction between them.
"""

from __future__ import annotations

from fnmatch import fnmatch
from typing import Sequence

from reprolint.analysis.callgraph import CallEdge, CallGraph, build_call_graph
from reprolint.analysis.dataflow import reachable, reached_unguarded
from reprolint.analysis.facts import (
    DEFAULT_LOCK_NAMES,
    CallFact,
    FunctionFacts,
    MutationFact,
    collect_facts,
)
from reprolint.analysis.model import (
    ClassInfo,
    FunctionInfo,
    ModuleInfo,
    ProjectModel,
    build_project,
    module_name_for,
)

__all__ = [
    "CallEdge",
    "CallFact",
    "CallGraph",
    "ClassInfo",
    "DEFAULT_LOCK_NAMES",
    "FunctionFacts",
    "FunctionInfo",
    "ModuleInfo",
    "MutationFact",
    "ProjectModel",
    "build_call_graph",
    "build_project",
    "collect_facts",
    "get_call_graph",
    "module_name_for",
    "reachable",
    "reached_unguarded",
]


def get_call_graph(
    ctx: "object",
    *,
    include: Sequence[str],
    exclude: Sequence[str] = (),
    lock_names: Sequence[str] = DEFAULT_LOCK_NAMES,
) -> CallGraph:
    """The call graph over the context's files matching ``include``.

    ``ctx`` is a :class:`~reprolint.checkers.base.RepoContext`; the
    graph is memoised in ``ctx.shared`` keyed by the resolved file set
    and lock patterns, so checkers sharing a scope share one build.
    """
    files = [
        path
        for path in ctx.files  # type: ignore[attr-defined]
        if any(fnmatch(path, pattern) for pattern in include)
        and not any(fnmatch(path, pattern) for pattern in exclude)
    ]
    key = ("call_graph", tuple(files), tuple(lock_names))
    shared = getattr(ctx, "shared", None)
    if shared is not None and key in shared:
        cached: CallGraph = shared[key]
        return cached
    sources = {}
    ctx_sources = getattr(ctx, "sources", {}) or {}
    root = getattr(ctx, "root", None)
    for path in files:
        if path in ctx_sources:
            sources[path] = ctx_sources[path]
        elif root is not None:
            try:
                sources[path] = (root / path).read_text(encoding="utf-8")
            except OSError:
                continue
    graph = build_call_graph(build_project(sources), lock_names)
    if shared is not None:
        shared[key] = graph
    return graph
