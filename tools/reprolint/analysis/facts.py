"""Per-function facts: calls, mutations, and the guards around them.

One pass over each function body records everything the interprocedural
rules need, with a *guard context* attached to every record:

* ``"lock"`` — the site is lexically inside ``with <lock-like>:``
  (the context expression's dotted name matches one of the configured
  lock patterns, ``self._lock``/``hold_slots``/…);
* ``"fnf"`` — the site is inside a ``try`` whose handlers catch
  ``FileNotFoundError`` (or a superclass).

Nested ``def``s are *not* descended into — they are separate functions
with their own facts — but ``lambda`` bodies are, because a lambda has
no identity of its own in the model.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from fnmatch import fnmatch
from typing import Iterable, Sequence

from reprolint.analysis.model import FunctionInfo, FunctionNode

#: ``with`` context expressions whose dotted name matches any of these
#: (case-insensitive) count as lock acquisition.  Semaphores are
#: deliberately absent: a ``BoundedSemaphore(n > 1)`` bounds residency
#: without granting exclusion, so counting it would mask real races.
DEFAULT_LOCK_NAMES = ("*lock*", "*mutex*", "*condition*")

#: Method names whose call mutates the receiver in place.
MUTATING_METHODS = frozenset(
    {
        "append",
        "extend",
        "insert",
        "remove",
        "pop",
        "popitem",
        "clear",
        "add",
        "discard",
        "update",
        "setdefault",
        "move_to_end",
        "sort",
        "reverse",
        "__setitem__",
    }
)

_FNF_NAMES = frozenset({"FileNotFoundError", "OSError", "IOError", "Exception"})


@dataclass(frozen=True)
class CallFact:
    """One call site: what it looks like, not yet what it resolves to."""

    node: ast.Call
    name: str  # dotted ("time.sleep", "self._pump") or "?.tail"
    n_args: int  # positional argument count
    guards: frozenset[str]


@dataclass(frozen=True)
class MutationFact:
    """One attribute mutation on a potentially shared object."""

    node: ast.AST
    target: str  # dotted receiver ("self._stats.loads")
    guards: frozenset[str]


@dataclass
class FunctionFacts:
    """Everything recorded for one function body."""

    calls: list[CallFact] = field(default_factory=list)
    mutations: list[MutationFact] = field(default_factory=list)
    loaded_names: set[str] = field(default_factory=set)


def dotted(node: ast.AST) -> str | None:
    """``a.b.c`` for a Name/Attribute chain, else ``None``."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _is_lock_expr(expr: ast.expr, lock_names: Sequence[str]) -> bool:
    if isinstance(expr, ast.Call):
        expr = expr.func
    name = dotted(expr)
    if name is None:
        return False
    lowered = name.lower()
    return any(fnmatch(lowered, pattern) for pattern in lock_names)


def _catches_fnf(handlers: Iterable[ast.ExceptHandler]) -> bool:
    for handler in handlers:
        if handler.type is None:
            return True
        types = (
            handler.type.elts
            if isinstance(handler.type, ast.Tuple)
            else [handler.type]
        )
        for entry in types:
            name = dotted(entry)
            if name and name.split(".")[-1] in _FNF_NAMES:
                return True
    return False


class _FactsWalker:
    """Recursive statement walker that threads the guard context."""

    def __init__(self, fn: FunctionInfo, lock_names: Sequence[str]) -> None:
        self.fn = fn
        self.lock_names = tuple(pattern.lower() for pattern in lock_names)
        self.facts = FunctionFacts()
        self.assigned: set[str] = set()
        self.aliases: dict[str, str] = {}  # local name -> "self.attr" chain

    # -- entry -----------------------------------------------------------

    def run(self) -> FunctionFacts:
        self._prescan(self.fn.node)
        for stmt in self.fn.node.body:
            self._stmt(stmt, frozenset())
        return self.facts

    def _prescan(self, node: FunctionNode) -> None:
        """Collect locally-assigned names (locals are never shared state)."""
        for child in ast.walk(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if child is not node:
                    self.assigned.add(child.name)
                continue
            targets: list[ast.expr] = []
            if isinstance(child, ast.Assign):
                targets = list(child.targets)
                if (
                    len(child.targets) == 1
                    and isinstance(child.targets[0], ast.Name)
                ):
                    source = dotted(child.value)
                    if source and source.split(".")[0] == "self":
                        self.aliases[child.targets[0].id] = source
            elif isinstance(child, (ast.AnnAssign, ast.AugAssign)):
                targets = [child.target]
            elif isinstance(child, (ast.For, ast.AsyncFor)):
                targets = [child.target]
            elif isinstance(child, ast.withitem) and child.optional_vars:
                targets = [child.optional_vars]
            elif isinstance(child, ast.comprehension):
                targets = [child.target]
            for target in targets:
                for leaf in ast.walk(target):
                    if isinstance(leaf, ast.Name):
                        self.assigned.add(leaf.id)

    # -- statements ------------------------------------------------------

    def _stmt(self, stmt: ast.stmt, guards: frozenset[str]) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return  # separate function; facts collected on its own info
        if isinstance(stmt, ast.ClassDef):
            return
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            inner = guards
            for item in stmt.items:
                self._expr(item.context_expr, guards)
                if _is_lock_expr(item.context_expr, self.lock_names):
                    inner = inner | {"lock"}
            for child in stmt.body:
                self._stmt(child, inner)
            return
        if isinstance(stmt, ast.Try):
            inner = guards
            if _catches_fnf(stmt.handlers):
                inner = inner | {"fnf"}
            for child in stmt.body:
                self._stmt(child, inner)
            for handler in stmt.handlers:
                for child in handler.body:
                    self._stmt(child, guards)
            for child in stmt.orelse:
                self._stmt(child, inner)
            for child in stmt.finalbody:
                self._stmt(child, guards)
            return
        if isinstance(stmt, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            targets = (
                list(stmt.targets)
                if isinstance(stmt, ast.Assign)
                else [stmt.target]
            )
            for target in targets:
                self._mutation_target(target, stmt, guards)
            if stmt.value is not None:
                self._expr(stmt.value, guards)
            return
        if isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                self._mutation_target(target, stmt, guards)
            return
        # Compound statements: visit headers, then bodies with the same
        # guards (an `if` does not change the guard context).
        for value in ast.iter_child_nodes(stmt):
            if isinstance(value, ast.stmt):
                self._stmt(value, guards)
            elif isinstance(value, ast.ExceptHandler):
                for child in value.body:
                    self._stmt(child, guards)
            elif isinstance(value, ast.expr):
                self._expr(value, guards)

    # -- expressions -----------------------------------------------------

    def _expr(self, expr: ast.expr, guards: frozenset[str]) -> None:
        for node in self._walk_expr(expr):
            if isinstance(node, ast.Call):
                self._record_call(node, guards)
            elif isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load):
                self.facts.loaded_names.add(node.id)

    def _walk_expr(self, expr: ast.expr) -> Iterable[ast.AST]:
        stack: list[ast.AST] = [expr]
        while stack:
            node = stack.pop()
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            yield node
            stack.extend(ast.iter_child_nodes(node))

    def _record_call(self, call: ast.Call, guards: frozenset[str]) -> None:
        name = dotted(call.func)
        if name is None and isinstance(call.func, ast.Attribute):
            name = f"?.{call.func.attr}"
        if name is None:
            return
        self.facts.calls.append(
            CallFact(
                node=call,
                name=name,
                n_args=len(call.args),
                guards=guards,
            )
        )
        # A mutating method call on a shared attribute chain is a
        # mutation in its own right (self._seen.pop(...), …).
        if isinstance(call.func, ast.Attribute) and call.func.attr in MUTATING_METHODS:
            receiver = dotted(call.func.value)
            if receiver is not None and self._is_shared(receiver):
                self.facts.mutations.append(
                    MutationFact(node=call, target=name, guards=guards)
                )

    def _mutation_target(
        self, target: ast.expr, stmt: ast.stmt, guards: frozenset[str]
    ) -> None:
        if isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._mutation_target(element, stmt, guards)
            return
        if isinstance(target, ast.Starred):
            self._mutation_target(target.value, stmt, guards)
            return
        if isinstance(target, ast.Subscript):
            receiver = dotted(target.value)
            self._expr(target.slice, guards)
            if receiver is not None and self._is_shared(receiver):
                self.facts.mutations.append(
                    MutationFact(
                        node=stmt, target=f"{receiver}[...]", guards=guards
                    )
                )
            return
        if isinstance(target, ast.Attribute):
            receiver = dotted(target)
            if receiver is not None and self._is_shared(receiver):
                self.facts.mutations.append(
                    MutationFact(node=stmt, target=receiver, guards=guards)
                )
            return
        # Plain Name targets are locals — never shared state.

    def _is_shared(self, receiver: str) -> bool:
        """Whether a dotted receiver chain names non-local state.

        ``self.x`` is shared; a name assigned in this function from a
        non-``self`` expression is local; a local alias of ``self.x``
        (``stats = self._stats``) is shared through the alias.
        """
        base = receiver.split(".")[0]
        if base == "self":
            return True
        if base == "cls":
            return True
        if base in self.aliases:
            return True
        if base in self.assigned:
            return False
        # Attribute chains on parameters/captured objects are potentially
        # shared; bare local-looking names are not (index-disjoint writes
        # into a caller-provided buffer are a sanctioned pattern).
        return "." in receiver


def collect_facts(
    fn: FunctionInfo, lock_names: Sequence[str] = DEFAULT_LOCK_NAMES
) -> FunctionFacts:
    """The facts for one function body (calls, mutations, guards)."""
    return _FactsWalker(fn, lock_names).run()
