"""Reviewed suppressions: ``# reprolint: disable=RPL0NN (reason)``.

A suppression silences named rules on the *statement* it is attached to
(trailing comment on any line of the statement, or a standalone comment
line immediately above it) or, with ``disable-file``, on the whole
file. Attachment is span-based: a directive trailing line 3 of a
four-line call covers a finding reported at line 1, and a directive on
a decorator line covers the ``def`` it decorates — the two cases a
naive line-equality rule gets wrong. For compound statements the span
is the *header* only (decorators through the signature), so a
directive on a ``def`` line never silences findings inside the body.

The parenthesised reason is mandatory — a suppression is a reviewed
exception, and the review lives in the reason. Suppressions that
silence nothing are reported as RPL000 findings so the inventory cannot
rot.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize

from reprolint.findings import META_CODE, Finding

_DIRECTIVE = re.compile(
    r"#\s*reprolint:\s*(?P<kind>disable(?:-file)?)\s*=\s*"
    r"(?P<codes>[A-Z0-9, ]+?)\s*"
    r"(?:\((?P<reason>[^()]*)\))?\s*$"
)
_CODE = re.compile(r"^RPL\d{3}$")


class Suppression:
    """One parsed directive plus its usage state.

    ``line`` is where the directive itself sits (used for reporting);
    ``lines`` is the span of the statement it attaches to.
    """

    __slots__ = ("path", "line", "lines", "codes", "reason", "file_wide", "used")

    def __init__(
        self,
        path: str,
        line: int,
        codes: frozenset[str],
        reason: str,
        *,
        file_wide: bool,
        lines: frozenset[int] | None = None,
    ) -> None:
        self.path = path
        self.line = line
        self.lines = lines if lines is not None else frozenset({line})
        self.codes = codes
        self.reason = reason
        self.file_wide = file_wide
        self.used = False

    def covers(self, code: str, line: int) -> bool:
        """Whether this directive silences ``code`` at ``line``."""
        return code in self.codes and (self.file_wide or line in self.lines)


class FileSuppressions:
    """Every directive of one file, plus the malformed ones."""

    def __init__(self, path: str) -> None:
        self.path = path
        self.suppressions: list[Suppression] = []
        self.malformed: list[Finding] = []

    def filter(self, findings: list[Finding]) -> list[Finding]:
        """Drop suppressed findings, marking their directives used."""
        kept: list[Finding] = []
        for finding in findings:
            if finding.code == META_CODE:
                kept.append(finding)  # meta findings are not suppressible
                continue
            hit = False
            for suppression in self.suppressions:
                if suppression.covers(finding.code, finding.line):
                    suppression.used = True
                    hit = True
            if not hit:
                kept.append(finding)
        return kept

    def unused(self) -> list[Finding]:
        """RPL000 findings for directives that silenced nothing."""
        return [
            Finding(
                path=self.path,
                line=suppression.line,
                col=0,
                code=META_CODE,
                message=(
                    "unused suppression of "
                    f"{','.join(sorted(suppression.codes))} — nothing on "
                    "this line violates it; remove the directive"
                ),
                checker="suppressions",
            )
            for suppression in self.suppressions
            if not suppression.used
        ]


def _statement_spans(source: str) -> list[tuple[int, int]]:
    """Line spans directives can attach to, innermost-resolvable.

    Simple statements span their full extent (a directive on any line
    of a multi-line call covers the whole call). Compound statements —
    crucially decorated ``def``/``class`` — contribute their *header*
    span only: first decorator line through the end of the signature,
    never the body.
    """
    try:
        tree = ast.parse(source)
    except (SyntaxError, ValueError):
        return []
    spans: list[tuple[int, int]] = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.stmt):
            continue
        body = getattr(node, "body", None)
        if isinstance(body, list) and body and isinstance(body[0], ast.stmt):
            start = node.lineno
            decorators = getattr(node, "decorator_list", [])
            if decorators:
                start = min(start, min(d.lineno for d in decorators))
            spans.append((start, max(node.lineno, body[0].lineno - 1)))
        else:
            spans.append((node.lineno, node.end_lineno or node.lineno))
    return spans


def _span_for(line: int, spans: list[tuple[int, int]]) -> tuple[int, int] | None:
    """The smallest statement span containing ``line``, if any."""
    best: tuple[int, int] | None = None
    for start, end in spans:
        if not (start <= line <= end):
            continue
        if best is None or (end - start) < (best[1] - best[0]):
            best = (start, end)
    return best


def parse(source: str, path: str) -> FileSuppressions:
    """Extract every reprolint directive from ``source``.

    Comment tokens come from :mod:`tokenize`, so directives inside
    string literals are never mistaken for real suppressions. A
    standalone directive comment covers the next statement; a trailing
    one covers the statement it sits on.
    """
    result = FileSuppressions(path)
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, SyntaxError, IndentationError):
        return result  # the engine reports the parse failure itself
    spans = _statement_spans(source)

    code_lines = {
        token.start[0]
        for token in tokens
        if token.type
        not in (
            tokenize.COMMENT,
            tokenize.NL,
            tokenize.NEWLINE,
            tokenize.INDENT,
            tokenize.DEDENT,
            tokenize.ENDMARKER,
        )
    }
    for token in tokens:
        if token.type != tokenize.COMMENT or "reprolint:" not in token.string:
            continue
        line = token.start[0]
        match = _DIRECTIVE.match(token.string.strip())
        if match is None:
            result.malformed.append(
                _malformed(path, line, "directive does not parse; expected "
                           "'# reprolint: disable=RPL0NN (reason)'")
            )
            continue
        codes = frozenset(
            code.strip() for code in match.group("codes").split(",") if code.strip()
        )
        bad = sorted(code for code in codes if not _CODE.match(code))
        if not codes or bad:
            result.malformed.append(
                _malformed(path, line, f"invalid rule code(s) {bad or '(none)'}; "
                           "codes look like RPL001")
            )
            continue
        if META_CODE in codes:
            result.malformed.append(
                _malformed(path, line, f"{META_CODE} findings cannot be suppressed")
            )
            continue
        reason = (match.group("reason") or "").strip()
        if not reason:
            result.malformed.append(
                _malformed(path, line, "suppression carries no reason; write "
                           "'# reprolint: disable=RPL0NN (why this is safe)'")
            )
            continue
        file_wide = match.group("kind") == "disable-file"
        if file_wide or line in code_lines:
            anchor = line
        else:  # standalone comment: attaches to the next statement
            following = [at for at in code_lines if at > line]
            anchor = min(following) if following else line
        span = _span_for(anchor, spans)
        covered = (
            frozenset(range(span[0], span[1] + 1))
            if span is not None
            else frozenset({anchor})
        )
        result.suppressions.append(
            Suppression(
                path, line, codes, reason, file_wide=file_wide, lines=covered
            )
        )
    return result


def _malformed(path: str, line: int, message: str) -> Finding:
    return Finding(
        path=path,
        line=line,
        col=0,
        code=META_CODE,
        message=f"malformed suppression: {message}",
        checker="suppressions",
    )
