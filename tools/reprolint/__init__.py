"""reprolint — AST-based invariant checker for this repository.

The reproduction's coverage verdicts are only trustworthy because replay
is bit-identical: frozen serializable specs, seeded rng streams threaded
end-to-end, atomic tmp+rename writes, and checkpoint codecs that never
re-ask a paid query. Three of the last four PRs shipped bugfixes for
violations of exactly these invariants. ``reprolint`` encodes them as
mechanical checks so the next regression is caught in CI, not in review.

Rules (see ``docs/guide/invariants.md`` for the full catalogue):

=======  ==============================================================
RPL000   reprolint meta: parse errors, malformed/unused suppressions
RPL001   determinism: no wall clocks or unseeded/global rng in core paths
RPL002   atomic-write: file writes must use the unique-tmp-then-rename idiom
RPL003   frozen-spec: payload dataclasses frozen, every field codec-covered
RPL004   error-contract: decoders must not leak bare ``KeyError``
RPL005   checkpoint-version: payload writers stamp, readers dispatch
RPL006   docstring-contract: public surface carries example docstrings
=======  ==============================================================

Run it from the repo root (``tools`` and ``src`` on ``PYTHONPATH``)::

    PYTHONPATH=src:tools python -m reprolint src tools benchmarks

Findings print as ``file:line: RPL0NN message``. A reviewed violation is
silenced in place with a reasoned suppression::

    time.time()  # reprolint: disable=RPL001 (heartbeats are wall-clock)

Suppressions without a reason are rejected, and suppressions that no
longer match any finding are themselves reported (RPL000), so the
suppression inventory cannot rot.
"""

from __future__ import annotations

from reprolint.config import Config, RuleScope
from reprolint.engine import LintResult, run_paths
from reprolint.findings import Finding

__all__ = [
    "Config",
    "Finding",
    "LintResult",
    "RuleScope",
    "run_paths",
    "__version__",
]

__version__ = "1.0.0"
