"""Entry point for ``python -m reprolint``."""

from reprolint.cli import main

raise SystemExit(main())
