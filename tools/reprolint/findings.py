"""Structured findings: what every checker emits and the CLI prints."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

#: The meta code used for tool-level diagnostics (parse failures,
#: malformed suppressions, unused suppressions). Not suppressible.
META_CODE = "RPL000"


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location.

    Sorts by ``(path, line, col, code)`` so reports are stable across
    runs and dict orderings.
    """

    path: str
    line: int
    col: int
    code: str
    message: str
    checker: str = field(default="", compare=False)

    def render(self) -> str:
        """The canonical one-line form: ``file:line: RPL0NN message``."""
        return f"{self.path}:{self.line}: {self.code} {self.message}"

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready form for ``--format json`` output."""
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "code": self.code,
            "message": self.message,
            "checker": self.checker,
        }
