"""Gate a fresh benchmark run against its committed baseline.

Compares a freshly generated ``BENCH_*.json`` against the copy
committed in the repository and fails (exit 1) when a performance
metric regressed beyond the tolerance. Metric direction is inferred
from the key name:

* **lower is better** — keys mentioning ``latency``, ``seconds``,
  ``p50``/``p99``, or ``time``;
* **higher is better** — keys mentioning ``per_sec``/``per_second``,
  ``speedup``, ``throughput``, or ``jobs_per``;
* anything else (counts, sizes, configuration echoes) is reported but
  never gates.

With the default ``--tolerance 0.5`` a lower-is-better metric may be up
to 2x the baseline and a higher-is-better one as low as half of it —
deliberately loose, because CI machines are noisy; the gate exists to
catch order-of-magnitude cliffs, not single-digit drift. Keys present
on only one side are reported and skipped (scenario sets may differ:
CI re-runs only a smoke slice of a multi-scenario baseline).

Result *lists* (``BENCH_scale.json``/``BENCH_shards.json`` keep one
entry per audit x size) are flattened too: each dict element is keyed
by its identity fields (``audit``, ``n_objects``, shard geometry, ...)
rather than its position, so a smoke slice re-running only ``N=10k``
lines up with the matching baseline entries and the rest skip.

Usage::

    python tools/check_bench_regression.py \
        --baseline BENCH_serving.json --new /tmp/BENCH_serving.json \
        [--tolerance 0.5]
"""

from __future__ import annotations

import argparse
import json
import re
import sys

LOWER_IS_BETTER = re.compile(r"latency|seconds|p50|p99|_time|time_")
HIGHER_IS_BETTER = re.compile(r"per_sec|per_second|speedup|throughput|jobs_per")

#: Scalar fields that identify a list element across runs (configuration
#: echoes, never measurements). Order fixes the rendered key.
IDENTITY_FIELDS = (
    "benchmark",
    "audit",
    "scenario",
    "name",
    "n_objects",
    "tau",
    "shard_size",
    "max_resident_shards",
    "executor_mode",
    "n_shards",
)


def element_key(element, index: int) -> str:
    """Stable label for one list element: identity fields, else position."""
    if isinstance(element, dict):
        parts = [
            f"{field}={element[field]}"
            for field in IDENTITY_FIELDS
            if isinstance(element.get(field), (str, int))
            and not isinstance(element.get(field), bool)
        ]
        if parts:
            return "[" + ",".join(parts) + "]"
    return f"[{index}]"


def direction(key: str) -> str | None:
    """'lower' / 'higher' when the key names a gated metric, else None."""
    lowered = key.lower()
    if HIGHER_IS_BETTER.search(lowered):
        return "higher"
    if LOWER_IS_BETTER.search(lowered):
        return "lower"
    return None


def numeric_leaves(node, prefix=""):
    """Flatten nested dicts to {dotted.path: float} over numeric leaves."""
    leaves: dict[str, float] = {}
    if isinstance(node, dict):
        for key, value in node.items():
            leaves.update(numeric_leaves(value, f"{prefix}{key}."))
    elif isinstance(node, list):
        for index, element in enumerate(node):
            label = element_key(element, index)
            leaves.update(
                numeric_leaves(element, f"{prefix.rstrip('.')}{label}.")
            )
    elif isinstance(node, bool):
        pass
    elif isinstance(node, (int, float)):
        leaves[prefix.rstrip(".")] = float(node)
    return leaves


def compare(baseline: dict, fresh: dict, tolerance: float) -> list[str]:
    """Regression messages (empty when the fresh run passes the gate)."""
    base_leaves = numeric_leaves(baseline)
    new_leaves = numeric_leaves(fresh)
    failures: list[str] = []
    for path in sorted(set(base_leaves) & set(new_leaves)):
        # Direction comes from the leaf key, not the scenario prefix.
        sense = direction(path.rsplit(".", 1)[-1])
        base, new = base_leaves[path], new_leaves[path]
        if sense is None or base <= 0:
            continue
        if sense == "lower" and new > base / tolerance:
            failures.append(
                f"REGRESSION {path}: {new:.4g} > {base:.4g}/{tolerance:g} "
                f"(lower is better)"
            )
        elif sense == "higher" and new < base * tolerance:
            failures.append(
                f"REGRESSION {path}: {new:.4g} < {base:.4g}*{tolerance:g} "
                f"(higher is better)"
            )
        else:
            ratio = new / base
            print(f"  ok {path}: {base:.4g} -> {new:.4g} ({ratio:.2f}x)")
    for path in sorted(set(base_leaves) ^ set(new_leaves)):
        if direction(path.rsplit(".", 1)[-1]) is not None:
            side = "baseline" if path in base_leaves else "new run"
            print(f"  skip {path}: only in {side}")
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", required=True)
    parser.add_argument("--new", required=True)
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.5,
        help="allowed fraction of baseline performance (0 < t <= 1)",
    )
    args = parser.parse_args(argv)
    if not 0 < args.tolerance <= 1:
        parser.error("--tolerance must be in (0, 1]")

    with open(args.baseline) as handle:
        baseline = json.load(handle)
    with open(args.new) as handle:
        fresh = json.load(handle)
    print(f"comparing {args.new} against {args.baseline} "
          f"(tolerance {args.tolerance:g})")
    failures = compare(baseline, fresh, args.tolerance)
    for message in failures:
        print(message, file=sys.stderr)
    if failures:
        return 1
    print("no benchmark regressions beyond tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
